package webgraph

import (
	"fmt"
	"io"
	"path/filepath"

	"sourcerank/internal/durable"
	"sourcerank/internal/linalg"
)

// This file builds the transition-matrix slab files (internal/linalg slab
// format) straight from a compressed graph, without ever materializing an
// in-RAM CSR. The peak heap cost of a build is O(nodes) for the degree
// and row-pointer arrays plus one bounded transpose bucket — independent
// of the edge count — so a graph whose matrices dwarf RAM can still be
// lowered to solvable slabs.
//
// Bitwise contract: the P slab decodes to exactly the uniform out-degree
// transition matrix (rank's builder: row u holds 1/o(u) per successor,
// dangling rows empty), and the Pᵀ slab to exactly its transpose as
// TransposeParallel/rank.TransitionT order it (per destination row,
// sources ascending). Slab-backed solves therefore reproduce the
// in-memory solver output bit for bit.

// SlabOptions configures BuildTransitionSlabs.
type SlabOptions struct {
	// Precision selects float64 or float32 value sections. The float32
	// narrowing matches linalg.NewCSR32 (nearest-even), so a float32 slab
	// equals the in-RAM float32 mirror bit for bit.
	Precision linalg.SlabPrecision
	// BufferBytes bounds the transpose bucket buffer; <= 0 selects 64 MiB.
	// Smaller buffers mean more decode passes over the compressed graph,
	// not a different result.
	BufferBytes int64
}

// slabBufferDefault sizes the transpose bucket: large enough that
// ordinary graphs transpose in one pass, small enough to stay irrelevant
// next to the dense iterate vectors of the solve that follows.
const slabBufferDefault = 64 << 20

// SlabPaths names the two slab files a build commits.
type SlabPaths struct {
	P  string // forward transition matrix
	PT string // its transpose, the power-iteration operand
}

// AdjacencySource is any graph that can replay its adjacency as a
// sorted, deduplicated sequential pass: every node from 0 to NumNodes()-1
// exactly once, successors ascending, the succ slice valid only for the
// duration of the callback. *Compressed satisfies it by decoding its
// slab; gen.Corpus satisfies it by merging on-disk shard runs — which is
// what lets slab construction consume a generator's spill files directly,
// with no compressed graph (let alone an edge list) ever resident.
type AdjacencySource interface {
	NumNodes() int
	EachAdjacency(fn func(u int32, succ []int32) error) error
}

// BuildTransitionSlabs lowers c to two committed slab files in dir:
// transition.slab (P) and transition_t.slab (Pᵀ). Sections are streamed
// from repeated decodes of the compressed adjacency slab, so no CSR array
// is ever resident; the transpose is assembled by a bucketed counting
// sort over destination-row ranges sized to opt.BufferBytes.
func BuildTransitionSlabs(fsys durable.FS, dir string, c *Compressed, opt SlabOptions) (SlabPaths, error) {
	return BuildTransitionSlabsFrom(fsys, dir, c, opt)
}

// BuildTransitionSlabsFrom is BuildTransitionSlabs over any adjacency
// source. Each slab section replays the source once (the transpose, once
// per bucket range), so the source must tolerate repeated passes.
func BuildTransitionSlabsFrom(fsys durable.FS, dir string, src AdjacencySource, opt SlabOptions) (SlabPaths, error) {
	bufBytes := opt.BufferBytes
	if bufBytes <= 0 {
		bufBytes = slabBufferDefault
	}
	n := src.NumNodes()
	paths := SlabPaths{
		P:  filepath.Join(dir, "transition.slab"),
		PT: filepath.Join(dir, "transition_t.slab"),
	}

	// Degree pass: one sequential decode fixes both row-pointer arrays
	// and the per-source weights.
	outdeg := make([]int64, n)
	indeg := make([]int64, n)
	nnz := int64(0)
	err := src.EachAdjacency(func(u int32, succ []int32) error {
		outdeg[u] = int64(len(succ))
		nnz += int64(len(succ))
		for _, v := range succ {
			indeg[v]++
		}
		return nil
	})
	if err != nil {
		return SlabPaths{}, err
	}

	// inv[u] = 1/o(u), the value of every entry in row u of P — exactly
	// rank's transition builder. Dangling u never emits, so inv there is
	// never read.
	inv := make([]float64, n)
	for u := 0; u < n; u++ {
		if outdeg[u] > 0 {
			inv[u] = 1 / float64(outdeg[u])
		}
	}

	if err := writeSlabFromDegrees(fsys, paths.P, opt.Precision, src, nnz, outdeg, inv); err != nil {
		return SlabPaths{}, fmt.Errorf("webgraph: transition slab: %w", err)
	}
	if err := writeTransposeSlab(fsys, paths.PT, opt.Precision, src, nnz, indeg, inv, bufBytes); err != nil {
		return SlabPaths{}, fmt.Errorf("webgraph: transpose slab: %w", err)
	}
	return paths, nil
}

// EachAdjacency decodes every adjacency list front to back, reusing one
// scratch buffer; it satisfies AdjacencySource.
func (c *Compressed) EachAdjacency(fn func(u int32, succ []int32) error) error {
	var scratch []int32
	for u := 0; u < c.numNodes; u++ {
		lo, hi := c.offsets[u], c.offsets[u+1]
		if lo < 0 || hi < lo || hi > int64(len(c.slab)) {
			return fmt.Errorf("%w: offsets of node %d out of bounds", ErrCodec, u)
		}
		var err error
		scratch, _, err = DecodeAdjacency(c.slab[lo:hi], int32(u), c.numNodes, scratch[:0])
		if err != nil {
			return fmt.Errorf("webgraph: node %d: %w", u, err)
		}
		if err := fn(int32(u), scratch); err != nil {
			return err
		}
	}
	return nil
}

// writeRowPtrFromDegrees streams the prefix sum of deg as the rowptr
// section without materializing it.
func writeRowPtrFromDegrees(w io.Writer, deg []int64) error {
	const chunk = 4096
	buf := make([]int64, 0, chunk)
	buf = append(buf, 0)
	sum := int64(0)
	for _, d := range deg {
		sum += d
		buf = append(buf, sum)
		if len(buf) == chunk {
			if err := linalg.WriteInt64sLE(w, buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return linalg.WriteInt64sLE(w, buf)
}

// writeWeights writes, for each row, deg[row] copies of weight[row] at
// the selected precision — the value section of a uniform out-degree
// matrix, streamed from the degree array alone.
func writeWeights(w io.Writer, prec linalg.SlabPrecision, deg []int64, weight []float64) error {
	const chunk = 4096
	if prec == linalg.SlabFloat32 {
		buf := make([]float32, 0, chunk)
		for r, d := range deg {
			v := float32(weight[r])
			for ; d > 0; d-- {
				buf = append(buf, v)
				if len(buf) == chunk {
					if err := linalg.WriteFloat32sLE(w, buf); err != nil {
						return err
					}
					buf = buf[:0]
				}
			}
		}
		return linalg.WriteFloat32sLE(w, buf)
	}
	buf := make([]float64, 0, chunk)
	for r, d := range deg {
		v := weight[r]
		for ; d > 0; d-- {
			buf = append(buf, v)
			if len(buf) == chunk {
				if err := linalg.WriteFloat64sLE(w, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
	}
	return linalg.WriteFloat64sLE(w, buf)
}

// writeSlabFromDegrees commits the forward transition slab: rowptr from
// outdeg, columns from one decode pass, values from outdeg alone.
func writeSlabFromDegrees(fsys durable.FS, path string, prec linalg.SlabPrecision, src AdjacencySource, nnz int64, outdeg []int64, inv []float64) error {
	return linalg.WriteSlabFile(fsys, path, prec, linalg.SlabSections{
		Rows: src.NumNodes(),
		Cols: src.NumNodes(),
		NNZ:  nnz,
		RowPtr: func(w io.Writer) error {
			return writeRowPtrFromDegrees(w, outdeg)
		},
		ColIdx: func(w io.Writer) error {
			return src.EachAdjacency(func(u int32, succ []int32) error {
				return linalg.WriteInt32sLE(w, succ)
			})
		},
		Values: func(w io.Writer) error {
			return writeWeights(w, prec, outdeg, inv)
		},
	})
}

// transposeBuckets splits destination rows [0, n) into contiguous ranges
// whose entry counts fit a bufBytes bucket of 4-byte elements (always at
// least one row per range), returning the range boundaries.
func transposeBuckets(indeg []int64, bufBytes int64) []int {
	maxEntries := bufBytes / 4
	if maxEntries < 1 {
		maxEntries = 1
	}
	bounds := []int{0}
	count := int64(0)
	for v, d := range indeg {
		if count > 0 && count+d > maxEntries {
			bounds = append(bounds, v)
			count = 0
		}
		count += d
	}
	bounds = append(bounds, len(indeg))
	return bounds
}

// fillBucket decodes the graph once and collects, for destination rows
// [lo, hi), the source of every in-edge in (destination, source)
// ascending order — the exact entry order of the transposed CSR — then
// hands each destination row's sources to emit.
func fillBucket(src AdjacencySource, lo, hi int, indeg []int64, buf []int32, emit func(sources []int32) error) error {
	// next[v-lo] is the bucket write cursor for destination v.
	start := make([]int64, hi-lo+1)
	for v := lo; v < hi; v++ {
		start[v-lo+1] = start[v-lo] + indeg[v]
	}
	next := make([]int64, hi-lo)
	copy(next, start[:hi-lo])
	err := src.EachAdjacency(func(u int32, succ []int32) error {
		for _, v := range succ {
			if int(v) >= lo && int(v) < hi {
				buf[next[v-int32(lo)]] = u
				next[v-int32(lo)]++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for v := lo; v < hi; v++ {
		if err := emit(buf[start[v-lo]:start[v-lo+1]]); err != nil {
			return err
		}
	}
	return nil
}

// writeTransposeSlab commits the transpose slab via a bucketed counting
// sort: destination rows are grouped into ranges that fit the bucket
// buffer, and the compressed graph is re-decoded once per range for the
// column section and once per range for the value section (sections are
// streamed in file order, so they cannot share a pass without spilling).
func writeTransposeSlab(fsys durable.FS, path string, prec linalg.SlabPrecision, src AdjacencySource, nnz int64, indeg []int64, inv []float64, bufBytes int64) error {
	bounds := transposeBuckets(indeg, bufBytes)
	var bucketMax int64
	for b := 0; b+1 < len(bounds); b++ {
		var cnt int64
		for v := bounds[b]; v < bounds[b+1]; v++ {
			cnt += indeg[v]
		}
		if cnt > bucketMax {
			bucketMax = cnt
		}
	}
	buf := make([]int32, bucketMax)
	forEachRow := func(emit func(sources []int32) error) error {
		for b := 0; b+1 < len(bounds); b++ {
			if err := fillBucket(src, bounds[b], bounds[b+1], indeg, buf, emit); err != nil {
				return err
			}
		}
		return nil
	}
	return linalg.WriteSlabFile(fsys, path, prec, linalg.SlabSections{
		Rows: src.NumNodes(),
		Cols: src.NumNodes(),
		NNZ:  nnz,
		RowPtr: func(w io.Writer) error {
			return writeRowPtrFromDegrees(w, indeg)
		},
		ColIdx: func(w io.Writer) error {
			return forEachRow(func(sources []int32) error {
				return linalg.WriteInt32sLE(w, sources)
			})
		},
		Values: func(w io.Writer) error {
			// Value k of the transpose is inv[source k]: replay the same
			// bucket fill and map sources through inv.
			if prec == linalg.SlabFloat32 {
				vbuf := make([]float32, 0, 4096)
				err := forEachRow(func(sources []int32) error {
					for _, u := range sources {
						vbuf = append(vbuf, float32(inv[u]))
						if len(vbuf) == cap(vbuf) {
							if err := linalg.WriteFloat32sLE(w, vbuf); err != nil {
								return err
							}
							vbuf = vbuf[:0]
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				return linalg.WriteFloat32sLE(w, vbuf)
			}
			vbuf := make([]float64, 0, 4096)
			err := forEachRow(func(sources []int32) error {
				for _, u := range sources {
					vbuf = append(vbuf, inv[u])
					if len(vbuf) == cap(vbuf) {
						if err := linalg.WriteFloat64sLE(w, vbuf); err != nil {
							return err
						}
						vbuf = vbuf[:0]
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			return linalg.WriteFloat64sLE(w, vbuf)
		},
	})
}
