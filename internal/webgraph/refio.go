package webgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	refFileMagic         = 0x53524B52 // "SRKR"
	refFileVersion       = 1
	refFileVersionFramed = 2 // durable CRC32-C-framed file
)

// Write serializes the reference-compressed graph as a bare version-1
// stream. Use WriteFile to publish to disk with durable framing.
func (c *CompressedRef) Write(w io.Writer) error {
	return c.write(w, refFileVersion)
}

func (c *CompressedRef) write(w io.Writer, version uint32) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	write := func(data any) error { return binary.Write(bw, le, data) }
	if err := write(uint32(refFileMagic)); err != nil {
		return err
	}
	if err := write(version); err != nil {
		return err
	}
	if err := write(uint64(c.numNodes)); err != nil {
		return err
	}
	if err := write(uint64(c.numEdges)); err != nil {
		return err
	}
	if err := write(uint64(len(c.slab))); err != nil {
		return err
	}
	if err := write(c.offsets); err != nil {
		return err
	}
	if _, err := bw.Write(c.slab); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCompressedRef deserializes a graph written by CompressedRef.Write,
// verifying the structure by one full sequential decode. It reads the
// bare version-1 stream; framed files go through ReadCompressedRefFile.
func ReadCompressedRef(r io.Reader) (*CompressedRef, error) {
	return readCompressedRef(r, refFileVersion)
}

func readCompressedRef(r io.Reader, wantVer uint32) (*CompressedRef, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic, ver uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, fmt.Errorf("webgraph: reading magic: %w", err)
	}
	if magic != refFileMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCodec, magic)
	}
	if err := binary.Read(br, le, &ver); err != nil {
		return nil, err
	}
	if ver != wantVer {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, ver)
	}
	var nodes, edges, slabLen uint64
	if err := binary.Read(br, le, &nodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &edges); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &slabLen); err != nil {
		return nil, err
	}
	if nodes > 1<<31 || slabLen > 1<<40 {
		return nil, fmt.Errorf("%w: implausible sizes", ErrCodec)
	}
	c := &CompressedRef{numNodes: int(nodes), numEdges: int64(edges)}
	// Chunked reads: a forged header must not force a huge allocation
	// before the stream runs dry (see safeio.go).
	offsets, err := readInt64s(br, nodes+1)
	if err != nil {
		return nil, fmt.Errorf("webgraph: reading offsets: %w", err)
	}
	c.offsets = offsets
	slab, err := readBytes(br, slabLen)
	if err != nil {
		return nil, fmt.Errorf("webgraph: reading slab: %w", err)
	}
	c.slab = slab
	// Offsets sanity plus a full decode to surface corruption eagerly.
	for u := 0; u < c.numNodes; u++ {
		if c.offsets[u] < 0 || c.offsets[u+1] < c.offsets[u] || c.offsets[u+1] > int64(len(c.slab)) {
			return nil, fmt.Errorf("%w: offsets of node %d out of bounds", ErrCodec, u)
		}
	}
	var edgeCount int64
	var ref []int32
	for u := 0; u < c.numNodes; u++ {
		if u%keyFrameInterval == 0 {
			ref = nil
		}
		lo, hi := c.offsets[u], c.offsets[u+1]
		cur, _, err := DecodeAdjacencyRef(c.slab[lo:hi], int32(u), c.numNodes, ref, nil)
		if err != nil {
			return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
		}
		edgeCount += int64(len(cur))
		ref = cur
	}
	if edgeCount != c.numEdges {
		return nil, fmt.Errorf("%w: declared %d edges, decoded %d", ErrCodec, c.numEdges, edgeCount)
	}
	return c, nil
}
