package webgraph

import (
	"math"
	"math/rand"
	"testing"

	"sourcerank/internal/graph"
	"sourcerank/internal/linalg"
	"sourcerank/internal/rank"
)

// forwardTransition mirrors rank's unexported transition builder: the
// uniform out-degree matrix assembled through NewCSR.
func forwardTransition(t *testing.T, g *graph.Graph) *linalg.CSR {
	t.Helper()
	entries := []linalg.Entry{}
	for u := 0; u < g.NumNodes(); u++ {
		succ := g.Successors(int32(u))
		if len(succ) == 0 {
			continue
		}
		w := 1 / float64(len(succ))
		for _, v := range succ {
			entries = append(entries, linalg.Entry{Row: u, Col: int(v), Val: w})
		}
	}
	m, err := linalg.NewCSR(g.NumNodes(), g.NumNodes(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func csrBitsEqual(t *testing.T, name string, want, got *linalg.CSR) {
	t.Helper()
	if want.Rows != got.Rows || want.ColsN != got.ColsN || want.NNZ() != got.NNZ() {
		t.Fatalf("%s: shape mismatch (%d,%d,%d) vs (%d,%d,%d)", name,
			want.Rows, want.ColsN, want.NNZ(), got.Rows, got.ColsN, got.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("%s: RowPtr[%d] = %d, want %d", name, i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for k := range want.Vals {
		if want.Cols[k] != got.Cols[k] {
			t.Fatalf("%s: Cols[%d] = %d, want %d", name, k, got.Cols[k], want.Cols[k])
		}
		if math.Float64bits(want.Vals[k]) != math.Float64bits(got.Vals[k]) {
			t.Fatalf("%s: Vals[%d] bits differ", name, k)
		}
	}
}

func buildSlabsFor(t *testing.T, g *graph.Graph, opt SlabOptions) SlabPaths {
	t.Helper()
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := BuildTransitionSlabs(nil, t.TempDir(), c, opt)
	if err != nil {
		t.Fatalf("BuildTransitionSlabs: %v", err)
	}
	return paths
}

func TestBuildTransitionSlabsBitwise(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random":   randomGraph(rand.New(rand.NewSource(7)), 300, 2500),
		"dangling": graph.FromAdjacency([][]int32{{1, 2}, {}, {0}, {}}),
		"empty":    graph.FromAdjacency(nil),
		"edgeless": graph.FromAdjacency([][]int32{{}, {}, {}}),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			paths := buildSlabsFor(t, g, SlabOptions{})
			wantP := forwardTransition(t, g)
			wantPT := rank.TransitionT(g)

			sp, err := linalg.OpenSlabCSR(paths.P, linalg.SlabOpenOptions{})
			if err != nil {
				t.Fatalf("open P: %v", err)
			}
			defer sp.Close()
			csrBitsEqual(t, "P", wantP, sp.Matrix())

			spt, err := linalg.OpenSlabCSR(paths.PT, linalg.SlabOpenOptions{})
			if err != nil {
				t.Fatalf("open PT: %v", err)
			}
			defer spt.Close()
			csrBitsEqual(t, "PT", wantPT, spt.Matrix())
			// And against the actual transpose of the forward matrix.
			csrBitsEqual(t, "PT-vs-transpose", wantP.Transpose(), spt.Matrix())
		})
	}
}

// TestBuildTransitionSlabsMultiBucket forces the transpose counting sort
// through many buffer-bounded passes and checks the result is unchanged.
func TestBuildTransitionSlabsMultiBucket(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(11)), 200, 3000)
	want := rank.TransitionT(g)
	for _, bufBytes := range []int64{1, 64, 4096} {
		paths := buildSlabsFor(t, g, SlabOptions{BufferBytes: bufBytes})
		spt, err := linalg.OpenSlabCSR(paths.PT, linalg.SlabOpenOptions{})
		if err != nil {
			t.Fatalf("open PT (buf=%d): %v", bufBytes, err)
		}
		csrBitsEqual(t, "PT", want, spt.Matrix())
		spt.Close()
	}
}

// TestBuildTransitionSlabsFloat32 pins the float32 slabs to the in-RAM
// float32 mirror: same narrowing, same bits.
func TestBuildTransitionSlabsFloat32(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(13)), 150, 1800)
	paths := buildSlabsFor(t, g, SlabOptions{Precision: linalg.SlabFloat32, BufferBytes: 512})
	want := linalg.NewCSR32(rank.TransitionT(g))
	spt, err := linalg.OpenSlabCSR32(paths.PT, linalg.SlabOpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer spt.Close()
	got := spt.Matrix()
	if got.Rows != want.Rows || got.NNZ() != want.NNZ() {
		t.Fatalf("shape mismatch")
	}
	for k := range want.Vals {
		if got.Cols[k] != want.Cols[k] {
			t.Fatalf("Cols[%d] differs", k)
		}
		if math.Float32bits(got.Vals[k]) != math.Float32bits(want.Vals[k]) {
			t.Fatalf("Vals[%d] bits differ from NewCSR32", k)
		}
	}
}

// TestSlabSolveMatchesRankPageRank closes the loop: a power solve over
// the slab-built transpose must reproduce rank.PageRank bit for bit.
func TestSlabSolveMatchesRankPageRank(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(17)), 250, 2000)
	res, err := rank.PageRank(g, rank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths := buildSlabsFor(t, g, SlabOptions{})
	spt, err := linalg.OpenSlabCSR(paths.PT, linalg.SlabOpenOptions{MaxResident: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer spt.Close()
	n := g.NumNodes()
	got, st, err := linalg.PowerMethodT(spt.Matrix(), 0.85, linalg.NewUniformVector(n), nil, linalg.SolverOptions{})
	if err != nil || !st.Converged {
		t.Fatalf("slab solve: %v %+v", err, st)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(res.Scores[i]) {
			t.Fatalf("score %d diverges from rank.PageRank", i)
		}
	}
}
