// Package webgraph implements a compressed on-disk / in-memory encoding of
// large web graphs, standing in for the Boldi–Vigna WebGraph framework the
// paper used to hold its 118M-page crawls in memory. Adjacency lists are
// stored gap-encoded (successive successor IDs differ by small deltas in a
// sorted list) with zig-zag varint byte codes, which compresses power-law
// web graphs to a few bits per edge in practice.
package webgraph

import (
	"errors"
	"fmt"
)

// ErrCodec reports malformed varint or gap-coded data.
var ErrCodec = errors.New("webgraph: malformed encoding")

// appendUvarint appends x in base-128 varint form.
func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// uvarint decodes a varint from b, returning the value and bytes consumed.
// It returns n == 0 on truncated input and n < 0 on overflow.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if i == 10 {
			return 0, -(i + 1) // overflow
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

// zigzag maps signed to unsigned so small negatives stay small.
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeAdjacency appends the gap-encoded form of a sorted, duplicate-free
// successor list to dst. The first entry is encoded as a zig-zag delta
// from the owning node ID (successor lists cluster near their source in
// web graphs, so this keeps the first gap small); subsequent entries are
// encoded as gaps-minus-one from their predecessor.
func EncodeAdjacency(dst []byte, node int32, succ []int32) ([]byte, error) {
	dst = appendUvarint(dst, uint64(len(succ)))
	prev := int64(node)
	for i, v := range succ {
		if i == 0 {
			dst = appendUvarint(dst, zigzag(int64(v)-prev))
		} else {
			gap := int64(v) - prev
			if gap <= 0 {
				return nil, fmt.Errorf("%w: successors not strictly increasing at %d", ErrCodec, i)
			}
			dst = appendUvarint(dst, uint64(gap-1))
		}
		prev = int64(v)
	}
	return dst, nil
}

// DecodeAdjacency decodes one adjacency list produced by EncodeAdjacency,
// appending the successors to succ and returning the extended slice plus
// the number of input bytes consumed. numNodes bounds valid IDs.
func DecodeAdjacency(src []byte, node int32, numNodes int, succ []int32) ([]int32, int, error) {
	deg, n := uvarint(src)
	if n <= 0 {
		return succ, 0, fmt.Errorf("%w: truncated degree", ErrCodec)
	}
	pos := n
	if deg > uint64(numNodes) {
		return succ, 0, fmt.Errorf("%w: degree %d exceeds node count %d", ErrCodec, deg, numNodes)
	}
	prev := int64(node)
	for i := uint64(0); i < deg; i++ {
		u, n := uvarint(src[pos:])
		if n <= 0 {
			return succ, 0, fmt.Errorf("%w: truncated gap at entry %d", ErrCodec, i)
		}
		pos += n
		var v int64
		if i == 0 {
			v = prev + unzigzag(u)
		} else {
			v = prev + int64(u) + 1
		}
		if v < 0 || v >= int64(numNodes) {
			return succ, 0, fmt.Errorf("%w: successor %d out of range [0,%d)", ErrCodec, v, numNodes)
		}
		succ = append(succ, int32(v))
		prev = v
	}
	return succ, pos, nil
}
