package webgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"sourcerank/internal/graph"
)

// Compressed is an immutable graph whose adjacency lists are held
// gap/varint-encoded in a single byte slab. Random access uses a per-node
// offset index; sequential iteration decodes the slab front to back.
type Compressed struct {
	numNodes int
	numEdges int64
	offsets  []int64 // offsets[u] is the slab position of node u's list
	slab     []byte
}

// Compress encodes g into the compressed representation.
func Compress(g *graph.Graph) (*Compressed, error) {
	c := &Compressed{
		numNodes: g.NumNodes(),
		numEdges: g.NumEdges(),
		offsets:  make([]int64, g.NumNodes()+1),
	}
	for u := 0; u < g.NumNodes(); u++ {
		c.offsets[u] = int64(len(c.slab))
		var err error
		c.slab, err = EncodeAdjacency(c.slab, int32(u), g.Successors(int32(u)))
		if err != nil {
			return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
		}
	}
	c.offsets[g.NumNodes()] = int64(len(c.slab))
	return c, nil
}

// NumNodes returns the node count.
func (c *Compressed) NumNodes() int { return c.numNodes }

// NumEdges returns the edge count.
func (c *Compressed) NumEdges() int64 { return c.numEdges }

// SizeBytes returns the in-memory size of the encoded adjacency slab,
// excluding the offset index.
func (c *Compressed) SizeBytes() int { return len(c.slab) }

// BitsPerEdge returns the average encoded size per edge in bits, the
// standard WebGraph compression metric. Returns 0 for an edgeless graph.
func (c *Compressed) BitsPerEdge() float64 {
	if c.numEdges == 0 {
		return 0
	}
	return float64(len(c.slab)*8) / float64(c.numEdges)
}

// Successors decodes node u's successor list into a fresh slice.
func (c *Compressed) Successors(u int32) ([]int32, error) {
	if u < 0 || int(u) >= c.numNodes {
		return nil, fmt.Errorf("webgraph: node %d out of range [0,%d)", u, c.numNodes)
	}
	lo, hi := c.offsets[u], c.offsets[u+1]
	succ, n, err := DecodeAdjacency(c.slab[lo:hi], u, c.numNodes, nil)
	if err != nil {
		return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
	}
	if int64(n) != hi-lo {
		return nil, fmt.Errorf("%w: node %d trailing bytes", ErrCodec, u)
	}
	return succ, nil
}

// Decompress reconstructs the plain CSR graph.
func (c *Compressed) Decompress() (*graph.Graph, error) {
	b := graph.NewBuilder(c.numNodes)
	var scratch []int32
	for u := 0; u < c.numNodes; u++ {
		lo, hi := c.offsets[u], c.offsets[u+1]
		var err error
		scratch, _, err = DecodeAdjacency(c.slab[lo:hi], int32(u), c.numNodes, scratch[:0])
		if err != nil {
			return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
		}
		for _, v := range scratch {
			b.AddEdge(int32(u), v)
		}
	}
	g := b.Build()
	if g.NumEdges() != c.numEdges {
		return nil, fmt.Errorf("%w: edge count mismatch %d != %d", ErrCodec, g.NumEdges(), c.numEdges)
	}
	return g, nil
}

// File format versions: 1 is the bare stream written by Write; 2 is the
// same layout committed through internal/durable (atomic rename plus a
// CRC32-C trailer), produced by WriteFile and read by ReadCompressedFile.
const (
	fileMagic         = 0x53524B43 // "SRKC"
	fileVersion       = 1
	fileVersionFramed = 2
)

// Write serializes the compressed graph as a bare version-1 stream. Use
// WriteFile to publish to disk with durable framing.
func (c *Compressed) Write(w io.Writer) error {
	return c.write(w, fileVersion)
}

func (c *Compressed) write(w io.Writer, version uint32) error {
	bw := bufio.NewWriter(w)
	write := func(data any) error {
		return binary.Write(bw, binary.LittleEndian, data)
	}
	if err := write(uint32(fileMagic)); err != nil {
		return err
	}
	if err := write(version); err != nil {
		return err
	}
	if err := write(uint64(c.numNodes)); err != nil {
		return err
	}
	if err := write(uint64(c.numEdges)); err != nil {
		return err
	}
	if err := write(uint64(len(c.slab))); err != nil {
		return err
	}
	if err := write(c.offsets); err != nil {
		return err
	}
	if _, err := bw.Write(c.slab); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCompressed deserializes a compressed graph written by Write and
// verifies its structure by decoding every adjacency list once. It reads
// the bare version-1 stream; framed files go through ReadCompressedFile.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	return readCompressed(r, fileVersion)
}

func readCompressed(r io.Reader, wantVer uint32) (*Compressed, error) {
	br := bufio.NewReader(r)
	var magic, ver uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("webgraph: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCodec, magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != wantVer {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, ver)
	}
	var nodes, edges, slabLen uint64
	if err := binary.Read(br, binary.LittleEndian, &nodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &edges); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &slabLen); err != nil {
		return nil, err
	}
	if nodes > 1<<31 || slabLen > 1<<40 {
		return nil, fmt.Errorf("%w: implausible sizes", ErrCodec)
	}
	c := &Compressed{numNodes: int(nodes), numEdges: int64(edges)}
	// Chunked reads: a forged header must not force a huge allocation
	// before the stream runs dry (see safeio.go).
	offsets, err := readInt64s(br, nodes+1)
	if err != nil {
		return nil, fmt.Errorf("webgraph: reading offsets: %w", err)
	}
	c.offsets = offsets
	slab, err := readBytes(br, slabLen)
	if err != nil {
		return nil, fmt.Errorf("webgraph: reading slab: %w", err)
	}
	c.slab = slab
	// Verify offsets and decode every list once to surface corruption now
	// rather than at query time.
	var edgeCount int64
	var scratch []int32
	for u := 0; u < c.numNodes; u++ {
		lo, hi := c.offsets[u], c.offsets[u+1]
		if lo < 0 || hi < lo || hi > int64(len(c.slab)) {
			return nil, fmt.Errorf("%w: offsets of node %d out of bounds", ErrCodec, u)
		}
		var err error
		scratch, _, err = DecodeAdjacency(c.slab[lo:hi], int32(u), c.numNodes, scratch[:0])
		if err != nil {
			return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
		}
		edgeCount += int64(len(scratch))
	}
	if edgeCount != c.numEdges {
		return nil, fmt.Errorf("%w: declared %d edges, decoded %d", ErrCodec, c.numEdges, edgeCount)
	}
	return c, nil
}
