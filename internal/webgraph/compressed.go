package webgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"

	"sourcerank/internal/graph"
)

// Compressed is an immutable graph whose adjacency lists are held
// gap/varint-encoded in a single byte slab. Random access uses a per-node
// offset index; sequential iteration decodes the slab front to back.
type Compressed struct {
	numNodes int
	numEdges int64
	offsets  []int64 // offsets[u] is the slab position of node u's list
	slab     []byte
}

// Compress encodes g into the compressed representation.
func Compress(g *graph.Graph) (*Compressed, error) {
	c := &Compressed{
		numNodes: g.NumNodes(),
		numEdges: g.NumEdges(),
		offsets:  make([]int64, g.NumNodes()+1),
	}
	for u := 0; u < g.NumNodes(); u++ {
		c.offsets[u] = int64(len(c.slab))
		var err error
		c.slab, err = EncodeAdjacency(c.slab, int32(u), g.Successors(int32(u)))
		if err != nil {
			return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
		}
	}
	c.offsets[g.NumNodes()] = int64(len(c.slab))
	return c, nil
}

// CompressFrom encodes any adjacency source into the compressed
// representation in one sequential pass. Peak heap is the output slab
// plus the offset index — the source's edges are never materialized —
// and the result is byte-identical to Compress over the equivalent
// graph.Graph, because both consume the same sorted, deduplicated
// adjacency order.
func CompressFrom(src AdjacencySource) (*Compressed, error) {
	n := src.NumNodes()
	c := &Compressed{
		numNodes: n,
		offsets:  make([]int64, n+1),
	}
	err := src.EachAdjacency(func(u int32, succ []int32) error {
		c.offsets[u] = int64(len(c.slab))
		var err error
		c.slab, err = EncodeAdjacency(c.slab, u, succ)
		if err != nil {
			return fmt.Errorf("webgraph: node %d: %w", u, err)
		}
		c.numEdges += int64(len(succ))
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.offsets[n] = int64(len(c.slab))
	return c, nil
}

// NumNodes returns the node count.
func (c *Compressed) NumNodes() int { return c.numNodes }

// NumEdges returns the edge count.
func (c *Compressed) NumEdges() int64 { return c.numEdges }

// SizeBytes returns the in-memory size of the encoded adjacency slab,
// excluding the offset index.
func (c *Compressed) SizeBytes() int { return len(c.slab) }

// BitsPerEdge returns the average encoded size per edge in bits, the
// standard WebGraph compression metric. Returns 0 for an edgeless graph.
func (c *Compressed) BitsPerEdge() float64 {
	if c.numEdges == 0 {
		return 0
	}
	return float64(len(c.slab)*8) / float64(c.numEdges)
}

// Successors decodes node u's successor list into a fresh slice.
func (c *Compressed) Successors(u int32) ([]int32, error) {
	if u < 0 || int(u) >= c.numNodes {
		return nil, fmt.Errorf("webgraph: node %d out of range [0,%d)", u, c.numNodes)
	}
	lo, hi := c.offsets[u], c.offsets[u+1]
	succ, n, err := DecodeAdjacency(c.slab[lo:hi], u, c.numNodes, nil)
	if err != nil {
		return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
	}
	if int64(n) != hi-lo {
		return nil, fmt.Errorf("%w: node %d trailing bytes", ErrCodec, u)
	}
	return succ, nil
}

// Decompress reconstructs the plain CSR graph.
func (c *Compressed) Decompress() (*graph.Graph, error) {
	b := graph.NewBuilder(c.numNodes)
	var scratch []int32
	for u := 0; u < c.numNodes; u++ {
		lo, hi := c.offsets[u], c.offsets[u+1]
		var err error
		scratch, _, err = DecodeAdjacency(c.slab[lo:hi], int32(u), c.numNodes, scratch[:0])
		if err != nil {
			return nil, fmt.Errorf("webgraph: node %d: %w", u, err)
		}
		for _, v := range scratch {
			b.AddEdge(int32(u), v)
		}
	}
	g := b.Build()
	if g.NumEdges() != c.numEdges {
		return nil, fmt.Errorf("%w: edge count mismatch %d != %d", ErrCodec, g.NumEdges(), c.numEdges)
	}
	return g, nil
}

// decompressParallelMinNodes gates the parallel decoder; below it the
// serial path wins. Variable so tests can force the parallel path on
// small fixtures.
var decompressParallelMinNodes = 2048

// partitionNodesBySlab splits [0, numNodes) into workers contiguous node
// ranges of approximately equal encoded size, returning workers+1
// boundaries. Adjacency blocks are independent, so ranges decode with no
// coordination.
func (c *Compressed) partitionNodesBySlab(workers int) []int {
	bounds := make([]int, workers+1)
	bounds[workers] = c.numNodes
	total := int64(len(c.slab))
	if total == 0 {
		for w := 1; w < workers; w++ {
			bounds[w] = w * c.numNodes / workers
		}
		return bounds
	}
	node := 0
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		for node < c.numNodes && c.offsets[node] < target {
			node++
		}
		bounds[w] = node
	}
	return bounds
}

// DecompressParallel reconstructs the plain CSR graph, decoding
// independent node blocks concurrently. workers <= 0 selects GOMAXPROCS.
// The decoded lists are already sorted and duplicate-free, so the CSR is
// assembled directly from per-worker buffers, producing a graph identical
// to Decompress for any worker count — and skipping the Builder's
// edge-sort pass entirely, which makes even the single-worker path faster
// than the serial decoder.
func (c *Compressed) DecompressParallel(workers int) (*graph.Graph, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.numNodes {
		workers = c.numNodes
	}
	if workers < 1 || c.numNodes < decompressParallelMinNodes {
		workers = 1
	}
	bounds := c.partitionNodesBySlab(workers)
	rowPtr := make([]int64, c.numNodes+1)
	parts := make([][]int32, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []int32
			for u := bounds[w]; u < bounds[w+1]; u++ {
				lo, hi := c.offsets[u], c.offsets[u+1]
				if lo < 0 || hi < lo || hi > int64(len(c.slab)) {
					errs[w] = fmt.Errorf("%w: offsets of node %d out of bounds", ErrCodec, u)
					return
				}
				before := len(buf)
				var err error
				buf, _, err = DecodeAdjacency(c.slab[lo:hi], int32(u), c.numNodes, buf)
				if err != nil {
					errs[w] = fmt.Errorf("webgraph: node %d: %w", u, err)
					return
				}
				rowPtr[u+1] = int64(len(buf) - before)
			}
			parts[w] = buf
		}(w)
	}
	wg.Wait()
	// Workers cover disjoint node ranges, so the lowest-indexed error is
	// the one the serial decoder would have hit first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for u := 0; u < c.numNodes; u++ {
		rowPtr[u+1] += rowPtr[u]
	}
	if rowPtr[c.numNodes] != c.numEdges {
		return nil, fmt.Errorf("%w: edge count mismatch %d != %d", ErrCodec, rowPtr[c.numNodes], c.numEdges)
	}
	succ := make([]int32, c.numEdges)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			copy(succ[rowPtr[bounds[w]]:], parts[w])
		}(w)
	}
	wg.Wait()
	return graph.FromParts(c.numNodes, rowPtr, succ)
}

// File format versions: 1 is the bare stream written by Write; 2 is the
// same layout committed through internal/durable (atomic rename plus a
// CRC32-C trailer), produced by WriteFile and read by ReadCompressedFile.
const (
	fileMagic         = 0x53524B43 // "SRKC"
	fileVersion       = 1
	fileVersionFramed = 2
)

// Write serializes the compressed graph as a bare version-1 stream. Use
// WriteFile to publish to disk with durable framing.
func (c *Compressed) Write(w io.Writer) error {
	return c.write(w, fileVersion)
}

func (c *Compressed) write(w io.Writer, version uint32) error {
	bw := bufio.NewWriter(w)
	write := func(data any) error {
		return binary.Write(bw, binary.LittleEndian, data)
	}
	if err := write(uint32(fileMagic)); err != nil {
		return err
	}
	if err := write(version); err != nil {
		return err
	}
	if err := write(uint64(c.numNodes)); err != nil {
		return err
	}
	if err := write(uint64(c.numEdges)); err != nil {
		return err
	}
	if err := write(uint64(len(c.slab))); err != nil {
		return err
	}
	if err := write(c.offsets); err != nil {
		return err
	}
	if _, err := bw.Write(c.slab); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCompressed deserializes a compressed graph written by Write and
// verifies its structure by decoding every adjacency list once. It reads
// the bare version-1 stream; framed files go through ReadCompressedFile.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	return readCompressed(r, fileVersion)
}

func readCompressed(r io.Reader, wantVer uint32) (*Compressed, error) {
	br := bufio.NewReader(r)
	var magic, ver uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("webgraph: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCodec, magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != wantVer {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, ver)
	}
	var nodes, edges, slabLen uint64
	if err := binary.Read(br, binary.LittleEndian, &nodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &edges); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &slabLen); err != nil {
		return nil, err
	}
	if nodes > 1<<31 || slabLen > 1<<40 {
		return nil, fmt.Errorf("%w: implausible sizes", ErrCodec)
	}
	c := &Compressed{numNodes: int(nodes), numEdges: int64(edges)}
	// Chunked reads: a forged header must not force a huge allocation
	// before the stream runs dry (see safeio.go).
	offsets, err := readInt64s(br, nodes+1)
	if err != nil {
		return nil, fmt.Errorf("webgraph: reading offsets: %w", err)
	}
	c.offsets = offsets
	slab, err := readBytes(br, slabLen)
	if err != nil {
		return nil, fmt.Errorf("webgraph: reading slab: %w", err)
	}
	c.slab = slab
	if err := c.verify(); err != nil {
		return nil, err
	}
	return c, nil
}

// verify checks offsets and decodes every adjacency list once to surface
// corruption at read time rather than at query time. Node blocks are
// independent, so verification fans out across GOMAXPROCS workers; the
// reported error is the lowest-numbered bad node's, exactly what the
// serial scan would return.
func (c *Compressed) verify() error {
	workers := runtime.GOMAXPROCS(0)
	if workers > c.numNodes {
		workers = c.numNodes
	}
	if workers < 1 || c.numNodes < decompressParallelMinNodes {
		workers = 1
	}
	bounds := c.partitionNodesBySlab(workers)
	errs := make([]error, workers)
	edges := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scratch []int32
			var n int64
			for u := bounds[w]; u < bounds[w+1]; u++ {
				lo, hi := c.offsets[u], c.offsets[u+1]
				if lo < 0 || hi < lo || hi > int64(len(c.slab)) {
					errs[w] = fmt.Errorf("%w: offsets of node %d out of bounds", ErrCodec, u)
					return
				}
				var err error
				scratch, _, err = DecodeAdjacency(c.slab[lo:hi], int32(u), c.numNodes, scratch[:0])
				if err != nil {
					errs[w] = fmt.Errorf("webgraph: node %d: %w", u, err)
					return
				}
				n += int64(len(scratch))
			}
			edges[w] = n
		}(w)
	}
	wg.Wait()
	var edgeCount int64
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return errs[w]
		}
		edgeCount += edges[w]
	}
	if edgeCount != c.numEdges {
		return fmt.Errorf("%w: declared %d edges, decoded %d", ErrCodec, c.numEdges, edgeCount)
	}
	return nil
}
