package webgraph

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sourcerank/internal/graph"
)

func randomGraph(rng *rand.Rand, n, edges int) *graph.Graph {
	b := graph.NewBuilder(n)
	for k := 0; k < edges; k++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := 0; u < a.NumNodes(); u++ {
		sa, sb := a.Successors(int32(u)), b.Successors(int32(u))
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
	}
	return true
}

func TestCompressDecompress(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1, 2}, {0, 2}, {}})
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 3 || c.NumEdges() != 4 {
		t.Fatalf("shape %d/%d", c.NumNodes(), c.NumEdges())
	}
	back, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Error("decompress differs from original")
	}
}

func TestCompressedSuccessors(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1, 2}, {}, {0}})
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Successors(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("Successors(0) = %v", s)
	}
	if _, err := c.Successors(5); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := c.Successors(-1); err == nil {
		t.Error("negative node accepted")
	}
}

func TestCompressionShrinksLocalGraphs(t *testing.T) {
	// A graph with strong locality (edges to nearby IDs) should compress
	// well below 4 bytes/edge of the raw representation.
	b := graph.NewBuilder(10000)
	rng := rand.New(rand.NewSource(3))
	for u := 0; u < 10000; u++ {
		for k := 0; k < 10; k++ {
			v := u + rng.Intn(100) - 50
			if v < 0 || v >= 10000 || v == u {
				continue
			}
			b.AddEdge(int32(u), int32(v))
		}
	}
	g := b.Build()
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if bpe := c.BitsPerEdge(); bpe >= 16 {
		t.Errorf("bits/edge = %.1f, want < 16 for a local graph", bpe)
	}
}

func TestCompressedFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 200, 2000)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c2.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Error("file round trip altered graph")
	}
}

func TestReadCompressedRejectsCorruption(t *testing.T) {
	g := graph.FromAdjacency([][]int32{{1}, {0}})
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, raw...)
		bad[0] ^= 0xFF
		if _, err := ReadCompressed(bytes.NewReader(bad)); !errors.Is(err, ErrCodec) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{3, 10, 20, len(raw) - 1} {
			if cut >= len(raw) {
				continue
			}
			if _, err := ReadCompressed(bytes.NewReader(raw[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("slab corrupted", func(t *testing.T) {
		bad := append([]byte{}, raw...)
		bad[len(bad)-1] ^= 0xFF
		if _, err := ReadCompressed(bytes.NewReader(bad)); err == nil {
			t.Error("corrupt slab accepted")
		}
	})
}

func TestEmptyGraphCompress(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.BitsPerEdge() != 0 {
		t.Errorf("BitsPerEdge = %v for empty graph", c.BitsPerEdge())
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCompressed(&buf); err != nil {
		t.Fatal(err)
	}
}

// Property: compress→write→read→decompress is the identity.
func TestQuickCompressedPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		g := randomGraph(rng, n, rng.Intn(500))
		c, err := Compress(g)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			return false
		}
		c2, err := ReadCompressed(&buf)
		if err != nil {
			return false
		}
		back, err := c2.Decompress()
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
