package webgraph

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sourcerank/internal/durable"
	"sourcerank/internal/graph"
)

func testGraph(t *testing.T, nodes, edges int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(nodes)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(rng.Intn(nodes)), int32(rng.Intn(nodes)))
	}
	return b.Build()
}

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for u := 0; u < a.NumNodes(); u++ {
		sa, sb := a.Successors(int32(u)), b.Successors(int32(u))
		if len(sa) != len(sb) {
			t.Fatalf("node %d: %d vs %d successors", u, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("node %d successor %d: %d != %d", u, i, sa[i], sb[i])
			}
		}
	}
}

func TestCompressedDurableFileRoundTrip(t *testing.T) {
	g := testGraph(t, 50, 400, 1)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.srkc")
	if err := c.WriteFile(nil, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressedFile(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := got.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, dg)
}

func TestCompressedRefDurableFileRoundTrip(t *testing.T) {
	g := testGraph(t, 50, 400, 2)
	c, err := CompressRef(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.srkr")
	if err := c.WriteFile(nil, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressedRefFile(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := got.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, dg)
}

// TestCompressedFileV1BackCompat writes a bare version-1 stream to disk
// (the pre-durable format) and reads it through the file-level reader.
func TestCompressedFileV1BackCompat(t *testing.T) {
	g := testGraph(t, 30, 150, 3)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph_v1.srkc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(f); err != nil { // legacy bare stream
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressedFile(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := got.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, dg)
}

func TestCompressedFileFlippedByteRejected(t *testing.T) {
	g := testGraph(t, 20, 80, 4)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.srkc")
	if err := c.WriteFile(nil, path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xa5
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadCompressedFile(nil, path)
		if err == nil {
			t.Fatalf("flip at offset %d accepted", i)
		}
		if !errors.Is(err, durable.ErrCorrupt) && !errors.Is(err, ErrCodec) {
			t.Fatalf("flip at offset %d: untyped error %v", i, err)
		}
	}
}

func TestGraphFileTruncationAtEveryOffsetRejected(t *testing.T) {
	g := testGraph(t, 12, 40, 5)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := CompressRef(g)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	cases := []struct {
		name  string
		write func(path string) error
		read  func(path string) error
	}{
		{
			"compressed",
			func(p string) error { return c.WriteFile(nil, p) },
			func(p string) error { _, err := ReadCompressedFile(nil, p); return err },
		},
		{
			"compressedref",
			func(p string) error { return cr.WriteFile(nil, p) },
			func(p string) error { _, err := ReadCompressedRefFile(nil, p); return err },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".bin")
			if err := tc.write(path); err != nil {
				t.Fatal(err)
			}
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n < len(good); n++ {
				if err := os.WriteFile(path, good[:n], 0o644); err != nil {
					t.Fatal(err)
				}
				err := tc.read(path)
				if err == nil {
					t.Fatalf("truncation to %d bytes accepted", n)
				}
				if !errors.Is(err, durable.ErrCorrupt) && !errors.Is(err, ErrCodec) {
					t.Fatalf("truncation to %d: untyped error %v", n, err)
				}
			}
		})
	}
}
