package webgraph

import (
	"math/rand"
	"testing"

	"sourcerank/internal/graph"
)

// TestDecompressParallelMatchesSerial checks the parallel block decoder
// against the serial one across worker counts, forcing the parallel path
// on fixtures below the size gate.
func TestDecompressParallelMatchesSerial(t *testing.T) {
	defer func(old int) { decompressParallelMinNodes = old }(decompressParallelMinNodes)
	decompressParallelMinNodes = 1

	rng := rand.New(rand.NewSource(17))
	cases := map[string]*graph.Graph{
		"small":    graph.FromAdjacency([][]int32{{1, 2}, {0, 2}, {}}),
		"random":   randomGraph(rng, 500, 4000),
		"dense":    randomGraph(rng, 64, 2000),
		"sparse":   randomGraph(rng, 3000, 3000),
		"edgeless": graph.FromAdjacency([][]int32{{}, {}, {}, {}}),
	}
	for name, g := range cases {
		c, err := Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 7, 16} {
			got, err := c.DecompressParallel(workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !graphsEqual(want, got) {
				t.Fatalf("%s workers=%d: parallel decode differs from serial", name, workers)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
		}
	}
}

// TestDecompressParallelRejectsCorruption makes the parallel decoder see
// a truncated slab and checks it fails rather than returning a mangled
// graph, matching the serial decoder's behavior.
func TestDecompressParallelRejectsCorruption(t *testing.T) {
	defer func(old int) { decompressParallelMinNodes = old }(decompressParallelMinNodes)
	decompressParallelMinNodes = 1

	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 200, 1500)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecompressParallel(4); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
	// Corrupt a byte in the middle of the slab.
	c.slab[len(c.slab)/2] ^= 0xFF
	serialErr := func() error { _, err := c.Decompress(); return err }()
	parallelErr := func() error { _, err := c.DecompressParallel(4); return err }()
	if serialErr == nil && parallelErr == nil {
		t.Skip("corruption not detectable at this byte (valid re-encoding)")
	}
	if (serialErr == nil) != (parallelErr == nil) {
		t.Fatalf("serial err %v, parallel err %v", serialErr, parallelErr)
	}
}
