package webgraph

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 300, 1 << 20, 1 << 40, 1<<64 - 1}
	for _, v := range values {
		buf := appendUvarint(nil, v)
		got, n := uvarint(buf)
		if n != len(buf) {
			t.Errorf("uvarint(%d) consumed %d of %d bytes", v, n, len(buf))
		}
		if got != v {
			t.Errorf("uvarint round trip %d -> %d", v, got)
		}
	}
}

func TestUvarintTruncated(t *testing.T) {
	buf := appendUvarint(nil, 1<<40)
	for cut := 0; cut < len(buf); cut++ {
		if _, n := uvarint(buf[:cut]); n > 0 {
			t.Errorf("truncated varint (len %d) accepted", cut)
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 11 continuation bytes overflow uint64.
	buf := make([]byte, 11)
	for i := range buf {
		buf[i] = 0xFF
	}
	if _, n := uvarint(buf); n >= 0 {
		t.Error("overflowing varint accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, x := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(x)); got != x {
			t.Errorf("zigzag round trip %d -> %d", x, got)
		}
	}
	// Small magnitudes must encode small.
	if zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Errorf("zigzag mapping unexpected: -1->%d, 1->%d", zigzag(-1), zigzag(1))
	}
}

func TestEncodeAdjacencyRejectsUnsorted(t *testing.T) {
	if _, err := EncodeAdjacency(nil, 0, []int32{3, 2}); !errors.Is(err, ErrCodec) {
		t.Errorf("unsorted list: err = %v, want ErrCodec", err)
	}
	if _, err := EncodeAdjacency(nil, 0, []int32{2, 2}); !errors.Is(err, ErrCodec) {
		t.Errorf("duplicate entries: err = %v, want ErrCodec", err)
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	cases := [][]int32{
		{},
		{0},
		{5},
		{0, 1, 2, 3},
		{100, 200, 300},
		{0, 999},
	}
	for _, succ := range cases {
		buf, err := EncodeAdjacency(nil, 50, succ)
		if err != nil {
			t.Fatalf("encode %v: %v", succ, err)
		}
		got, n, err := DecodeAdjacency(buf, 50, 1000, nil)
		if err != nil {
			t.Fatalf("decode %v: %v", succ, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d", succ, n, len(buf))
		}
		if len(got) != len(succ) {
			t.Fatalf("decode %v -> %v", succ, got)
		}
		for i := range succ {
			if got[i] != succ[i] {
				t.Fatalf("decode %v -> %v", succ, got)
			}
		}
	}
}

func TestDecodeAdjacencyRejectsOutOfRange(t *testing.T) {
	buf, err := EncodeAdjacency(nil, 0, []int32{500})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeAdjacency(buf, 0, 100, nil); !errors.Is(err, ErrCodec) {
		t.Errorf("out-of-range successor: err = %v, want ErrCodec", err)
	}
}

func TestDecodeAdjacencyRejectsHugeDegree(t *testing.T) {
	buf := appendUvarint(nil, 1<<40) // absurd degree
	if _, _, err := DecodeAdjacency(buf, 0, 100, nil); !errors.Is(err, ErrCodec) {
		t.Errorf("huge degree: err = %v, want ErrCodec", err)
	}
}

func TestDecodeAdjacencyTruncated(t *testing.T) {
	buf, err := EncodeAdjacency(nil, 0, []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeAdjacency(buf[:cut], 0, 10, nil); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// Property: encode/decode round-trips arbitrary sorted unique lists.
func TestQuickAdjacencyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := 1 + rng.Intn(10000)
		node := int32(rng.Intn(numNodes))
		deg := rng.Intn(50)
		if deg > numNodes {
			deg = numNodes
		}
		set := map[int32]bool{}
		for len(set) < deg {
			set[int32(rng.Intn(numNodes))] = true
		}
		succ := make([]int32, 0, deg)
		for v := range set {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		buf, err := EncodeAdjacency(nil, node, succ)
		if err != nil {
			return false
		}
		got, n, err := DecodeAdjacency(buf, node, numNodes, nil)
		if err != nil || n != len(buf) || len(got) != len(succ) {
			return false
		}
		for i := range succ {
			if got[i] != succ[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
