package webgraph

import (
	"bytes"
	"sort"
	"testing"
)

// succFromBytes derives a sorted, duplicate-free, in-range successor
// list from fuzz-controlled bytes, so the round-trip targets explore
// arbitrary list shapes while staying in the encoders' contract.
func succFromBytes(data []byte, numNodes int) []int32 {
	if numNodes <= 0 {
		return nil
	}
	seen := map[int32]bool{}
	var cur int32
	for _, b := range data {
		cur = (cur + int32(b) + 1) % int32(numNodes)
		seen[cur] = true
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FuzzDecodeRoundTrip checks that every encodable adjacency list decodes
// back to itself under both the plain gap codec and the
// reference/interval codec, consuming exactly the bytes produced.
func FuzzDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint16(50), []byte{1, 2, 3}, []byte{4, 5})
	f.Add(uint16(7), uint16(1000), []byte{0, 0, 0, 255, 255}, []byte{})
	f.Add(uint16(999), uint16(1000), []byte{}, []byte{9})
	f.Fuzz(func(t *testing.T, nodeRaw, sizeRaw uint16, succBytes, refBytes []byte) {
		numNodes := int(sizeRaw)%2048 + 1
		node := int32(int(nodeRaw) % numNodes)
		succ := succFromBytes(succBytes, numNodes)
		ref := succFromBytes(refBytes, numNodes)

		// Plain gap codec.
		enc, err := EncodeAdjacency(nil, node, succ)
		if err != nil {
			t.Fatalf("encode rejected its contract input: %v", err)
		}
		got, n, err := DecodeAdjacency(enc, node, numNodes, nil)
		if err != nil {
			t.Fatalf("decode failed on valid encoding: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if !equalInt32(got, succ) {
			t.Fatalf("round trip mismatch: %v != %v", got, succ)
		}

		// Reference + interval codec against an arbitrary reference list.
		rEnc, err := EncodeAdjacencyRef(nil, node, succ, ref)
		if err != nil {
			t.Fatalf("ref encode rejected its contract input: %v", err)
		}
		rGot, rn, err := DecodeAdjacencyRef(rEnc, node, numNodes, ref, nil)
		if err != nil {
			t.Fatalf("ref decode failed on valid encoding: %v", err)
		}
		if rn != len(rEnc) {
			t.Fatalf("ref decode consumed %d of %d bytes", rn, len(rEnc))
		}
		if !equalInt32(rGot, succ) {
			t.Fatalf("ref round trip mismatch: %v != %v", rGot, succ)
		}
	})
}

// FuzzReaderArbitraryBytes feeds attacker-controlled bytes to every
// decoding entry point: the two adjacency decoders and the two file
// readers. None may panic, and on success the decoded lists must honor
// the documented invariants (sorted, strictly increasing, in range).
func FuzzReaderArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x01, 0x00, 0x02})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// A valid single-node compressed file, so the fuzzer can mutate from
	// a structurally-plausible seed.
	f.Add([]byte{
		0x56, 0x4b, 0x52, 0x53, 0x01, 0x00, 0x00, 0x00, // magic "SRKV"? actually fileMagic LE
		0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		const numNodes = 1500
		for _, node := range []int32{0, 1, numNodes - 1} {
			succ, n, err := DecodeAdjacency(data, node, numNodes, nil)
			if err == nil {
				if n > len(data) {
					t.Fatalf("consumed %d > input %d", n, len(data))
				}
				checkSorted(t, succ, numNodes)
			}
			// Decode against an empty reference and against a synthetic one.
			ref := []int32{1, 5, 6, 7, 100, 1400}
			for _, r := range [][]int32{nil, ref} {
				succ, n, err := DecodeAdjacencyRef(data, node, numNodes, r, nil)
				if err == nil {
					if n > len(data) {
						t.Fatalf("ref consumed %d > input %d", n, len(data))
					}
					for _, v := range succ {
						if v < 0 || v >= numNodes {
							t.Fatalf("ref decode emitted out-of-range %d", v)
						}
					}
				}
			}
		}
		// File readers over arbitrary bytes: must error or produce a
		// verified structure, never panic or allocate unboundedly.
		if c, err := ReadCompressed(bytes.NewReader(data)); err == nil {
			for u := 0; u < c.NumNodes(); u++ {
				if _, err := c.Successors(int32(u)); err != nil {
					t.Fatalf("verified read but Successors(%d) failed: %v", u, err)
				}
			}
		}
		if c, err := ReadCompressedRef(bytes.NewReader(data)); err == nil {
			if _, err := c.Decompress(); err != nil {
				t.Fatalf("verified ref read but Decompress failed: %v", err)
			}
		}
	})
}

func checkSorted(t *testing.T, succ []int32, numNodes int) {
	t.Helper()
	for i, v := range succ {
		if v < 0 || int(v) >= numNodes {
			t.Fatalf("out-of-range successor %d", v)
		}
		if i > 0 && succ[i-1] >= v {
			t.Fatalf("decoded list not strictly increasing: %v", succ)
		}
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
