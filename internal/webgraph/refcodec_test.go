package webgraph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sourcerank/internal/graph"
)

func refRoundTrip(t *testing.T, node int32, numNodes int, succ, ref []int32) {
	t.Helper()
	buf, err := EncodeAdjacencyRef(nil, node, succ, ref)
	if err != nil {
		t.Fatalf("encode %v against %v: %v", succ, ref, err)
	}
	got, n, err := DecodeAdjacencyRef(buf, node, numNodes, ref, nil)
	if err != nil {
		t.Fatalf("decode %v against %v: %v", succ, ref, err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(succ) {
		t.Fatalf("round trip %v -> %v", succ, got)
	}
	for i := range succ {
		if got[i] != succ[i] {
			t.Fatalf("round trip %v -> %v", succ, got)
		}
	}
}

func TestRefCodecBasic(t *testing.T) {
	cases := []struct {
		succ, ref []int32
	}{
		{nil, nil},
		{[]int32{5}, nil},
		{[]int32{1, 2, 3}, nil},                               // pure interval
		{[]int32{1, 2, 3, 10}, nil},                           // interval + residual
		{[]int32{1, 5, 9}, []int32{1, 5, 9}},                  // full copy
		{[]int32{1, 9}, []int32{1, 5, 9}},                     // copy with skip
		{[]int32{1, 5, 9, 20, 21, 22}, []int32{1, 5, 9}},      // copy + interval
		{[]int32{2, 6}, []int32{1, 5, 9}},                     // no overlap
		{[]int32{0, 1, 2, 3, 4, 5, 6, 7}, []int32{3, 4, 5}},   // interval across copy
		{[]int32{100, 200, 300}, []int32{100, 150, 300, 400}}, // partial
	}
	for _, c := range cases {
		refRoundTrip(t, 50, 1000, c.succ, c.ref)
	}
}

func TestRefCodecRejectsUnsorted(t *testing.T) {
	if _, err := EncodeAdjacencyRef(nil, 0, []int32{3, 2}, nil); err == nil {
		t.Error("unsorted successors accepted")
	}
}

func TestRefCodecTruncated(t *testing.T) {
	ref := []int32{1, 5, 9}
	buf, err := EncodeAdjacencyRef(nil, 0, []int32{1, 9, 20, 21, 22, 40}, ref)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeAdjacencyRef(buf[:cut], 0, 100, ref, nil); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestRefCompressionBeatsPlainOnNavGraphs(t *testing.T) {
	// Consecutive pages of a "site" share most successors (navigation),
	// the case reference compression exists for.
	b := graph.NewBuilder(2000)
	for u := 0; u < 2000; u++ {
		base := (u / 50) * 50
		for k := 0; k < 20; k++ {
			v := base + k
			if v != u {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	g := b.Build()
	plain, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	refc, err := CompressRef(g)
	if err != nil {
		t.Fatal(err)
	}
	if refc.BitsPerEdge() >= plain.BitsPerEdge() {
		t.Errorf("reference compression (%.2f bits/edge) not better than plain (%.2f)",
			refc.BitsPerEdge(), plain.BitsPerEdge())
	}
	back, err := refc.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Error("ref decompress differs")
	}
}

func TestCompressRefRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 300, 3000)
	c, err := CompressRef(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int32{0, 1, 31, 32, 33, 150, 299} {
		got, err := c.Successors(u)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Successors(u)
		if len(got) != len(want) {
			t.Fatalf("node %d: %v != %v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d: %v != %v", u, got, want)
			}
		}
	}
	if _, err := c.Successors(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := c.Successors(300); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestCompressRefEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	c, err := CompressRef(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.BitsPerEdge() != 0 || c.NumNodes() != 0 || c.NumEdges() != 0 {
		t.Error("empty graph stats wrong")
	}
	if _, err := c.Decompress(); err != nil {
		t.Fatal(err)
	}
}

// Property: ref codec round-trips arbitrary sorted lists against
// arbitrary sorted references.
func TestQuickRefCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := 10 + rng.Intn(2000)
		node := int32(rng.Intn(numNodes))
		mk := func(maxLen int) []int32 {
			l := rng.Intn(maxLen)
			if l > numNodes {
				l = numNodes
			}
			set := map[int32]bool{}
			for len(set) < l {
				set[int32(rng.Intn(numNodes))] = true
			}
			var out []int32
			for v := range set {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		succ := mk(40)
		ref := mk(40)
		buf, err := EncodeAdjacencyRef(nil, node, succ, ref)
		if err != nil {
			return false
		}
		got, n, err := DecodeAdjacencyRef(buf, node, numNodes, ref, nil)
		if err != nil || n != len(buf) || len(got) != len(succ) {
			return false
		}
		for i := range succ {
			if got[i] != succ[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: CompressRef→Decompress is the identity on random graphs.
func TestQuickCompressRefPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		g := randomGraph(rng, n, rng.Intn(800))
		c, err := CompressRef(g)
		if err != nil {
			return false
		}
		back, err := c.Decompress()
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
