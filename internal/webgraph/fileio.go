package webgraph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sourcerank/internal/durable"
)

// File-level graph persistence. Unlike the stream Write/Read pair, these
// commit through internal/durable: write-temp, CRC32-C trailer, fsync,
// atomic rename. A crash mid-write leaves the previous file intact, and
// a flipped bit anywhere in a committed file is rejected on read with a
// typed *durable.CorruptError before any structural decoding runs.
// Legacy bare version-1 files remain readable.

// WriteFile atomically commits the compressed graph to path in the
// framed version-2 format. fsys nil selects the real filesystem.
func (c *Compressed) WriteFile(fsys durable.FS, path string) error {
	return durable.WriteFile(fsys, path, func(w io.Writer) error {
		return c.write(w, fileVersionFramed)
	})
}

// ReadCompressedFile reads a graph committed by WriteFile, accepting
// legacy bare version-1 files as well.
func ReadCompressedFile(fsys durable.FS, path string) (*Compressed, error) {
	payload, framed, err := readGraphFile(fsys, path, fileMagic, fileVersionFramed)
	if err != nil {
		return nil, err
	}
	wantVer := uint32(fileVersion)
	if framed {
		wantVer = fileVersionFramed
	}
	return readCompressed(bytes.NewReader(payload), wantVer)
}

// WriteFile atomically commits the reference-compressed graph to path in
// the framed version-2 format. fsys nil selects the real filesystem.
func (c *CompressedRef) WriteFile(fsys durable.FS, path string) error {
	return durable.WriteFile(fsys, path, func(w io.Writer) error {
		return c.write(w, refFileVersionFramed)
	})
}

// ReadCompressedRefFile reads a graph committed by CompressedRef.WriteFile,
// accepting legacy bare version-1 files as well.
func ReadCompressedRefFile(fsys durable.FS, path string) (*CompressedRef, error) {
	payload, framed, err := readGraphFile(fsys, path, refFileMagic, refFileVersionFramed)
	if err != nil {
		return nil, err
	}
	wantVer := uint32(refFileVersion)
	if framed {
		wantVer = refFileVersionFramed
	}
	return readCompressedRef(bytes.NewReader(payload), wantVer)
}

// readGraphFile loads path, dispatches on the header version, verifies
// the trailer of framed files, and returns the stream payload plus
// whether it was framed. Non-framed payloads go to the parser expecting
// version 1, which also reports unknown future versions.
func readGraphFile(fsys durable.FS, path string, magic, framedVer uint32) ([]byte, bool, error) {
	data, err := durable.ReadRaw(fsys, path)
	if err != nil {
		return nil, false, err
	}
	if len(data) < 8 {
		return nil, false, fmt.Errorf("webgraph: %s: %w: %d-byte file is shorter than the header",
			path, ErrCodec, len(data))
	}
	le := binary.LittleEndian
	if got := le.Uint32(data[0:4]); got != magic {
		return nil, false, fmt.Errorf("webgraph: %s: %w: bad magic %#x", path, ErrCodec, got)
	}
	if ver := le.Uint32(data[4:8]); ver != framedVer {
		return data, false, nil
	}
	payload, err := durable.Verify(data)
	if err != nil {
		var ce *durable.CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return nil, false, err
	}
	return payload, true, nil
}
