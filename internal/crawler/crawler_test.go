package crawler

import (
	"errors"
	"testing"

	"sourcerank/internal/core"
	"sourcerank/internal/gen"
	"sourcerank/internal/pagegraph"
)

// hiddenWeb builds: source A {0,1,2}, source B {3,4}, source C {5}.
// Links: 0->1, 1->3, 3->4, 4->5, 2 unreachable from 0.
func hiddenWeb(t *testing.T) *pagegraph.Graph {
	t.Helper()
	g := pagegraph.New()
	a := g.AddSource("a.com")
	b := g.AddSource("b.com")
	c := g.AddSource("c.com")
	for i := 0; i < 3; i++ {
		g.AddPage(a)
	}
	g.AddPage(b)
	g.AddPage(b)
	g.AddPage(c)
	g.AddLink(0, 1)
	g.AddLink(1, 3)
	g.AddLink(3, 4)
	g.AddLink(4, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCrawlReachabilityOnly(t *testing.T) {
	res, err := Crawl(hiddenWeb(t), Options{Seeds: []pagegraph.PageID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 5 { // page 2 is unreachable
		t.Errorf("fetched = %d, want 5", res.Fetched)
	}
	if res.PageMap[2] != -1 {
		t.Error("unreachable page fetched")
	}
	if res.Corpus.NumSources() != 3 {
		t.Errorf("corpus sources = %d, want 3", res.Corpus.NumSources())
	}
	if err := res.Corpus.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrawlPreservesLinks(t *testing.T) {
	hidden := hiddenWeb(t)
	res, err := Crawl(hidden, Options{Seeds: []pagegraph.PageID{0}})
	if err != nil {
		t.Fatal(err)
	}
	// Every hidden link among fetched pages must appear in the corpus.
	var want, got int64
	for p := 0; p < hidden.NumPages(); p++ {
		if res.PageMap[p] == -1 {
			continue
		}
		for _, q := range hidden.OutLinks(pagegraph.PageID(p)) {
			if res.PageMap[q] != -1 {
				want++
			}
		}
	}
	got = res.Corpus.NumLinks()
	if got != want {
		t.Errorf("corpus links = %d, want %d", got, want)
	}
	// Source labels carried over.
	if res.Corpus.SourceLabel(res.SourceMap[1]) != "b.com" {
		t.Error("label lost in crawl")
	}
}

func TestCrawlBudget(t *testing.T) {
	res, err := Crawl(hiddenWeb(t), Options{Seeds: []pagegraph.PageID{0}, MaxPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 2 {
		t.Errorf("fetched = %d, want 2", res.Fetched)
	}
	if res.FrontierLeft == 0 {
		t.Error("no frontier left despite budget cut")
	}
}

func TestCrawlPerSourceCap(t *testing.T) {
	g := pagegraph.New()
	a := g.AddSource("big.com")
	var pages []pagegraph.PageID
	for i := 0; i < 10; i++ {
		pages = append(pages, g.AddPage(a))
	}
	for i := 0; i < 9; i++ {
		g.AddLink(pages[i], pages[i+1])
	}
	res, err := Crawl(g, Options{Seeds: []pagegraph.PageID{pages[0]}, MaxPerSource: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 3 {
		t.Errorf("fetched = %d, want 3 (per-source cap)", res.Fetched)
	}
}

func TestCrawlErrors(t *testing.T) {
	g := hiddenWeb(t)
	if _, err := Crawl(g, Options{}); !errors.Is(err, ErrNoSeeds) {
		t.Error("no seeds accepted")
	}
	if _, err := Crawl(g, Options{Seeds: []pagegraph.PageID{99}}); err == nil {
		t.Error("bad seed accepted")
	}
}

func TestCrawlDeterministic(t *testing.T) {
	hidden := hiddenWeb(t)
	a, err := Crawl(hidden, Options{Seeds: []pagegraph.PageID{0}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Crawl(hidden, Options{Seeds: []pagegraph.PageID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fetched != b.Fetched || a.Corpus.NumLinks() != b.Corpus.NumLinks() {
		t.Error("crawl not deterministic")
	}
	for p := range a.PageMap {
		if a.PageMap[p] != b.PageMap[p] {
			t.Fatalf("page map differs at %d", p)
		}
	}
}

func TestCoverageBySource(t *testing.T) {
	hidden := hiddenWeb(t)
	res, err := Crawl(hidden, Options{Seeds: []pagegraph.PageID{0}})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.CoverageBySource(hidden)
	// Source A: 2 of 3 pages (page 2 unreachable); B: 2/2; C: 1/1.
	if cov[0] < 0.66 || cov[0] > 0.67 {
		t.Errorf("coverage[A] = %v, want 2/3", cov[0])
	}
	if cov[1] != 1 || cov[2] != 1 {
		t.Errorf("coverage B/C = %v/%v, want 1/1", cov[1], cov[2])
	}
}

// Integration: crawl a synthetic true web and run the full SRSR pipeline
// on the crawled corpus — the exact data path the paper's experiments
// had (crawler -> corpus -> rankings).
func TestCrawlThenRankPipeline(t *testing.T) {
	ds, err := gen.GeneratePreset(gen.UK2002, 0.005, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Seed from the first page of the first 20 sources.
	var seeds []pagegraph.PageID
	for s := 0; s < 20 && s < ds.Pages.NumSources(); s++ {
		if pages := ds.Pages.PagesOf(pagegraph.SourceID(s)); len(pages) > 0 {
			seeds = append(seeds, pages[0])
		}
	}
	res, err := Crawl(ds.Pages, Options{Seeds: seeds, MaxPages: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched == 0 {
		t.Fatal("crawl fetched nothing")
	}
	// Remap the spam labels into the crawled corpus.
	var spamSeeds []int32
	for _, s := range ds.SpamSources {
		if mapped := res.SourceMap[s]; mapped != -1 {
			spamSeeds = append(spamSeeds, int32(mapped))
		}
	}
	if len(spamSeeds) == 0 {
		t.Skip("crawl did not reach any spam source at this scale/seed")
	}
	pipe, err := core.Pipeline(res.Corpus, core.PipelineConfig{
		SpamSeeds: spamSeeds,
		TopK:      res.Corpus.NumSources() / 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pipe.Stats.Converged {
		t.Errorf("pipeline on crawl did not converge: %+v", pipe.Stats)
	}
}

func TestCrawlDuplicateSeeds(t *testing.T) {
	hidden := hiddenWeb(t)
	dup, err := Crawl(hidden, Options{Seeds: []pagegraph.PageID{0, 0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Crawl(hidden, Options{Seeds: []pagegraph.PageID{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dup.Fetched != ref.Fetched {
		t.Errorf("duplicate seeds fetched %d, deduped %d", dup.Fetched, ref.Fetched)
	}
	for p := range dup.PageMap {
		if dup.PageMap[p] != ref.PageMap[p] {
			t.Fatalf("duplicate seeds changed the crawl at page %d", p)
		}
	}
}

func TestCrawlNegativeSeedRejected(t *testing.T) {
	if _, err := Crawl(hiddenWeb(t), Options{Seeds: []pagegraph.PageID{-1}}); err == nil {
		t.Error("negative seed accepted")
	}
	// One bad seed poisons the whole call even when others are valid.
	if _, err := Crawl(hiddenWeb(t), Options{Seeds: []pagegraph.PageID{0, -1}}); err == nil {
		t.Error("mixed valid/invalid seeds accepted")
	}
}

func TestCrawlPerSourceCapBelowSeedCount(t *testing.T) {
	// Source a.com holds seeds {0,1,2}; with MaxPerSource 1 only one of
	// them may be fetched, but the crawl must still escape to the other
	// sources through the fetched page's links.
	res, err := Crawl(hiddenWeb(t), Options{
		Seeds:        []pagegraph.PageID{0, 1, 2},
		MaxPerSource: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 is fetched (a.com's single slot); 1 and 2 are dropped at
	// the cap. 0->1 re-discovers 1 but the cap still blocks it; 1 was
	// nonetheless the page whose link 1->3 would open source b — and it
	// was a seed, so b is reachable only if a capped seed still spreads
	// its links. It does not: dropped pages are never expanded.
	if res.Fetched != 1 {
		t.Errorf("fetched = %d, want 1 (cap below seed count)", res.Fetched)
	}
	if got := res.Corpus.NumSources(); got != 1 {
		t.Errorf("corpus sources = %d, want 1", got)
	}
	if res.PageMap[1] != -1 || res.PageMap[2] != -1 {
		t.Error("capped seed pages appear fetched")
	}
}

func TestCrawlFrontierLeftAtExactBudget(t *testing.T) {
	hidden := hiddenWeb(t)
	// 5 pages are reachable from seed 0. A budget of exactly 5 drains
	// the frontier: nothing may be reported left over.
	res, err := Crawl(hidden, Options{Seeds: []pagegraph.PageID{0}, MaxPages: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 5 {
		t.Fatalf("fetched = %d, want 5", res.Fetched)
	}
	if res.FrontierLeft != 0 {
		t.Errorf("FrontierLeft = %d at exact budget, want 0", res.FrontierLeft)
	}
	// One page short of the reachable set: exactly one page must be
	// reported as discovered-but-unfetched.
	res, err = Crawl(hidden, Options{Seeds: []pagegraph.PageID{0}, MaxPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 4 {
		t.Fatalf("fetched = %d, want 4", res.Fetched)
	}
	if res.FrontierLeft != 1 {
		t.Errorf("FrontierLeft = %d one under budget, want 1", res.FrontierLeft)
	}
}
