// Package crawler simulates the data-collection substrate behind the
// paper's corpora: WebBase and UbiCrawler are breadth-first web crawlers,
// and the graphs the paper ranks are exactly what such a crawler
// discovers. Crawl walks a "hidden" page graph from seed pages under a
// page budget and a per-source cap (real crawlers bound per-host fetches
// for politeness), producing the discovered sub-corpus with dense IDs.
//
// Running the ranking pipeline on a crawl of a synthetic "true web"
// (rather than on the true web directly) reproduces the partial-
// observation character of the paper's datasets.
package crawler

import (
	"errors"
	"fmt"

	"sourcerank/internal/pagegraph"
)

// Options configures a crawl. MaxPages <= 0 means unbounded;
// MaxPerSource <= 0 means no per-source cap.
type Options struct {
	// Seeds are the hidden-graph page IDs the frontier starts from.
	Seeds []pagegraph.PageID
	// MaxPages bounds the number of fetched pages.
	MaxPages int
	// MaxPerSource bounds fetches per source (politeness / crawl-depth
	// limits real crawlers apply per host).
	MaxPerSource int
}

// Result is the outcome of a crawl.
type Result struct {
	// Corpus is the discovered page graph: fetched pages, remapped to
	// dense IDs, with the links among fetched pages. Sources appear in
	// the corpus only if at least one of their pages was fetched.
	Corpus *pagegraph.Graph
	// PageMap maps hidden page IDs to corpus page IDs (-1 = not fetched).
	PageMap []pagegraph.PageID
	// SourceMap maps hidden source IDs to corpus source IDs (-1 = no
	// page of that source was fetched).
	SourceMap []pagegraph.SourceID
	// Fetched is the number of pages crawled.
	Fetched int
	// FrontierLeft is the number of discovered-but-unfetched pages when
	// the budget ran out.
	FrontierLeft int
}

// ErrNoSeeds reports a crawl without seed pages.
var ErrNoSeeds = errors.New("crawler: no seed pages")

// Crawl breadth-first crawls hidden from the seeds under opt's limits.
// The traversal is deterministic: the frontier is a FIFO queue and each
// page's out-links are visited in stored order.
func Crawl(hidden *pagegraph.Graph, opt Options) (*Result, error) {
	if len(opt.Seeds) == 0 {
		return nil, ErrNoSeeds
	}
	for _, s := range opt.Seeds {
		if s < 0 || int(s) >= hidden.NumPages() {
			return nil, fmt.Errorf("crawler: seed page %d of %d", s, hidden.NumPages())
		}
	}
	res := &Result{
		Corpus:    pagegraph.New(),
		PageMap:   make([]pagegraph.PageID, hidden.NumPages()),
		SourceMap: make([]pagegraph.SourceID, hidden.NumSources()),
	}
	for i := range res.PageMap {
		res.PageMap[i] = -1
	}
	for i := range res.SourceMap {
		res.SourceMap[i] = -1
	}
	perSource := make([]int, hidden.NumSources())

	enqueued := make([]bool, hidden.NumPages())
	queue := make([]pagegraph.PageID, 0, len(opt.Seeds))
	for _, s := range opt.Seeds {
		if !enqueued[s] {
			enqueued[s] = true
			queue = append(queue, s)
		}
	}

	var fetchedOrder []pagegraph.PageID
	for len(queue) > 0 {
		if opt.MaxPages > 0 && res.Fetched >= opt.MaxPages {
			break
		}
		p := queue[0]
		queue = queue[1:]
		src := hidden.SourceOf(p)
		if opt.MaxPerSource > 0 && perSource[src] >= opt.MaxPerSource {
			continue // politeness cap reached; page dropped
		}
		// Fetch p.
		if res.SourceMap[src] == -1 {
			res.SourceMap[src] = res.Corpus.AddSource(hidden.SourceLabel(src))
		}
		res.PageMap[p] = res.Corpus.AddPage(res.SourceMap[src])
		perSource[src]++
		res.Fetched++
		fetchedOrder = append(fetchedOrder, p)
		for _, q := range hidden.OutLinks(p) {
			if !enqueued[q] {
				enqueued[q] = true
				queue = append(queue, q)
			}
		}
	}
	// Count leftover frontier (enqueued, never fetched).
	for _, p := range queue {
		if res.PageMap[p] == -1 {
			res.FrontierLeft++
		}
	}
	// Second pass: add the links among fetched pages.
	for _, p := range fetchedOrder {
		from := res.PageMap[p]
		for _, q := range hidden.OutLinks(p) {
			if to := res.PageMap[q]; to != -1 {
				res.Corpus.AddLink(from, to)
			}
		}
	}
	return res, nil
}

// CoverageBySource returns, for each hidden source, the fraction of its
// pages that were fetched (0 for sources never touched).
func (r *Result) CoverageBySource(hidden *pagegraph.Graph) []float64 {
	total := hidden.PageCounts()
	fetched := make([]int, hidden.NumSources())
	for p, mapped := range r.PageMap {
		if mapped != -1 {
			fetched[hidden.SourceOf(pagegraph.PageID(p))]++
		}
	}
	cov := make([]float64, hidden.NumSources())
	for s := range cov {
		if total[s] > 0 {
			cov[s] = float64(fetched[s]) / float64(total[s])
		}
	}
	return cov
}
