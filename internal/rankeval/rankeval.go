// Package rankeval evaluates and compares ranking vectors: percentile
// ranks (the y-axis of the paper's Figures 6–7), equal-size bucket
// distributions (Figure 5), and rank-correlation metrics (Kendall τ,
// Spearman footrule, top-k overlap) used by the stability ablations.
package rankeval

import (
	"errors"
	"fmt"
	"sort"

	"sourcerank/internal/linalg"
)

// ErrBadInput reports malformed evaluation inputs.
var ErrBadInput = errors.New("rankeval: bad input")

// Ranks returns the 0-based descending-score rank of every node: the node
// with the highest score has rank 0. Ties resolve by smaller index first,
// making ranks deterministic.
func Ranks(scores linalg.Vector) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	ranks := make([]int, len(scores))
	for r, i := range idx {
		ranks[i] = r
	}
	return ranks
}

// Percentile returns node i's ranking percentile in [0, 100]: the share
// of nodes whose score is strictly below node i's. Tied nodes therefore
// share one percentile, which keeps the statistic stable when many nodes
// sit in a near-identical score band (common in teleport-dominated
// rankings). The unique top node of n nodes gets 100·(n-1)/n; any node
// tied with the minimum gets 0.
func Percentile(scores linalg.Vector, i int) (float64, error) {
	if i < 0 || i >= len(scores) {
		return 0, fmt.Errorf("%w: index %d of %d", ErrBadInput, i, len(scores))
	}
	n := len(scores)
	if n == 1 {
		return 0, nil
	}
	sorted := sortedScores(scores)
	below := sort.SearchFloat64s(sorted, scores[i])
	return 100 * float64(below) / float64(n), nil
}

// sortedScores returns an ascending copy of scores.
func sortedScores(scores linalg.Vector) []float64 {
	sorted := make([]float64, len(scores))
	copy(sorted, scores)
	sort.Float64s(sorted)
	return sorted
}

// Buckets sorts nodes by decreasing score, splits them into k buckets of
// (near-)equal size — bucket 0 holds the top-ranked nodes — and returns
// the count of marked nodes per bucket. This reproduces the paper's
// Figure 5 methodology (20 buckets, marked = spam sources).
func Buckets(scores linalg.Vector, marked []int32, k int) ([]int, error) {
	n := len(scores)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k = %d with %d nodes", ErrBadInput, k, n)
	}
	ranks := Ranks(scores)
	counts := make([]int, k)
	for _, m := range marked {
		if m < 0 || int(m) >= n {
			return nil, fmt.Errorf("%w: marked node %d of %d", ErrBadInput, m, n)
		}
		// Bucket b covers ranks [b*n/k, (b+1)*n/k).
		b := ranks[m] * k / n
		if b >= k {
			b = k - 1
		}
		counts[b]++
	}
	return counts, nil
}

// BottomHalf returns the node IDs ranked in the bottom 50% by score,
// which is where the paper samples its attack targets ("randomly selected
// five sources from the bottom 50% of all sources").
func BottomHalf(scores linalg.Vector) []int32 {
	n := len(scores)
	ranks := Ranks(scores)
	var out []int32
	for i := 0; i < n; i++ {
		if ranks[i] >= n/2 {
			out = append(out, int32(i))
		}
	}
	return out
}

// KendallTau computes the Kendall rank-correlation coefficient between
// two score vectors over the same node set, in O(n log n) via inversion
// counting. Ties are broken deterministically by node index (both sides
// use the same tie-break, so identical vectors give τ = 1).
func KendallTau(a, b linalg.Vector) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("%w: lengths %d != %d", ErrBadInput, n, len(b))
	}
	if n < 2 {
		return 1, nil
	}
	// Order nodes by a's ranking, then count inversions in b's ranking.
	ra := Ranks(a)
	rb := Ranks(b)
	posByARank := make([]int, n)
	for i, r := range ra {
		posByARank[r] = i
	}
	seq := make([]int, n)
	for r := 0; r < n; r++ {
		seq[r] = rb[posByARank[r]]
	}
	inv := countInversions(seq)
	pairs := float64(n) * float64(n-1) / 2
	return 1 - 2*float64(inv)/pairs, nil
}

// countInversions counts inversions by merge sort; it mutates its input.
func countInversions(a []int) int64 {
	buf := make([]int, len(a))
	var rec func(lo, hi int) int64
	rec = func(lo, hi int) int64 {
		if hi-lo < 2 {
			return 0
		}
		mid := (lo + hi) / 2
		inv := rec(lo, mid) + rec(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if a[i] <= a[j] {
				buf[k] = a[i]
				i++
			} else {
				buf[k] = a[j]
				j++
				inv += int64(mid - i)
			}
			k++
		}
		for i < mid {
			buf[k] = a[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = a[j]
			j++
			k++
		}
		copy(a[lo:hi], buf[lo:hi])
		return inv
	}
	return rec(0, len(a))
}

// SpearmanFootrule returns the normalized Spearman footrule distance
// between the two rankings: Σ|rank_a(i) − rank_b(i)| divided by the
// maximum possible displacement. 0 means identical rankings, 1 maximally
// displaced.
func SpearmanFootrule(a, b linalg.Vector) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("%w: lengths %d != %d", ErrBadInput, n, len(b))
	}
	if n < 2 {
		return 0, nil
	}
	ra, rb := Ranks(a), Ranks(b)
	var sum int64
	for i := 0; i < n; i++ {
		d := int64(ra[i] - rb[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	// Max footrule is n²/2 (even n) or (n²-1)/2 (odd n).
	maxSum := int64(n) * int64(n) / 2
	if n%2 == 1 {
		maxSum = (int64(n)*int64(n) - 1) / 2
	}
	return float64(sum) / float64(maxSum), nil
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k, the share of a's top-k
// nodes that also appear in b's top-k.
func TopKOverlap(a, b linalg.Vector, k int) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("%w: lengths %d != %d", ErrBadInput, n, len(b))
	}
	if k <= 0 || k > n {
		return 0, fmt.Errorf("%w: k = %d with %d nodes", ErrBadInput, k, n)
	}
	ra, rb := Ranks(a), Ranks(b)
	inA := map[int]bool{}
	for i := 0; i < n; i++ {
		if ra[i] < k {
			inA[i] = true
		}
	}
	common := 0
	for i := 0; i < n; i++ {
		if rb[i] < k && inA[i] {
			common++
		}
	}
	return float64(common) / float64(k), nil
}

// MeanPercentileOf returns the average ranking percentile (strictly-below
// semantics, as in Percentile) of the marked nodes under the given scores.
func MeanPercentileOf(scores linalg.Vector, marked []int32) (float64, error) {
	if len(marked) == 0 {
		return 0, fmt.Errorf("%w: no marked nodes", ErrBadInput)
	}
	n := len(scores)
	sorted := sortedScores(scores)
	var sum float64
	for _, m := range marked {
		if m < 0 || int(m) >= n {
			return 0, fmt.Errorf("%w: marked node %d of %d", ErrBadInput, m, n)
		}
		below := sort.SearchFloat64s(sorted, scores[m])
		sum += 100 * float64(below) / float64(n)
	}
	return sum / float64(len(marked)), nil
}
