package rankeval

import (
	"fmt"
	"sort"

	"sourcerank/internal/linalg"
)

// AUC computes the area under the ROC curve for using `scores` as a
// detector of the `positives` set: the probability that a uniformly
// random positive node outscores a uniformly random negative node, with
// ties counted half (the Mann–Whitney U formulation). 0.5 is chance,
// 1.0 a perfect separation. The spam-proximity experiments use it to
// grade how well the §5 walk recovers unlabeled spam.
func AUC(scores linalg.Vector, positives []int32) (float64, error) {
	n := len(scores)
	isPos := make([]bool, n)
	nPos := 0
	for _, p := range positives {
		if p < 0 || int(p) >= n {
			return 0, fmt.Errorf("%w: positive node %d of %d", ErrBadInput, p, n)
		}
		if !isPos[p] {
			isPos[p] = true
			nPos++
		}
	}
	nNeg := n - nPos
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("%w: need both positives (%d) and negatives (%d)", ErrBadInput, nPos, nNeg)
	}
	// Rank-sum with midranks for ties.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	var rankSum float64 // sum of 1-based midranks of positives
	i := 0
	for i < n {
		j := i + 1
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if isPos[idx[k]] {
				rankSum += mid
			}
		}
		i = j
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// PrecisionAtK returns the fraction of the top-k scored nodes that are in
// the positives set.
func PrecisionAtK(scores linalg.Vector, positives []int32, k int) (float64, error) {
	n := len(scores)
	if k <= 0 || k > n {
		return 0, fmt.Errorf("%w: k = %d with %d nodes", ErrBadInput, k, n)
	}
	isPos := make([]bool, n)
	for _, p := range positives {
		if p < 0 || int(p) >= n {
			return 0, fmt.Errorf("%w: positive node %d of %d", ErrBadInput, p, n)
		}
		isPos[p] = true
	}
	ranks := Ranks(scores)
	hits := 0
	for i := 0; i < n; i++ {
		if ranks[i] < k && isPos[i] {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// RecallAtK returns the fraction of positives found in the top-k.
func RecallAtK(scores linalg.Vector, positives []int32, k int) (float64, error) {
	if len(positives) == 0 {
		return 0, fmt.Errorf("%w: empty positive set", ErrBadInput)
	}
	p, err := PrecisionAtK(scores, positives, k)
	if err != nil {
		return 0, err
	}
	// precision*k = hits; recall = hits / |positives| (positives are
	// deduplicated by PrecisionAtK's boolean mask, so count unique).
	unique := map[int32]bool{}
	for _, x := range positives {
		unique[x] = true
	}
	return p * float64(k) / float64(len(unique)), nil
}
