package rankeval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sourcerank/internal/linalg"
)

func TestAUCPerfect(t *testing.T) {
	scores := linalg.Vector{0.9, 0.8, 0.1, 0.2}
	auc, err := AUC(scores, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	// Inverted detector.
	auc, _ = AUC(scores, []int32{2, 3})
	if auc != 0 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestAUCChance(t *testing.T) {
	// All scores tied: AUC must be exactly 0.5 (midranks).
	scores := linalg.Vector{0.5, 0.5, 0.5, 0.5}
	auc, err := AUC(scores, []int32{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0)
	// -> 3 of 4 concordant -> AUC 0.75.
	scores := linalg.Vector{3, 1, 2, 0}
	auc, err := AUC(scores, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	scores := linalg.Vector{1, 2}
	if _, err := AUC(scores, nil); err == nil {
		t.Error("no positives accepted")
	}
	if _, err := AUC(scores, []int32{0, 1}); err == nil {
		t.Error("no negatives accepted")
	}
	if _, err := AUC(scores, []int32{5}); err == nil {
		t.Error("out-of-range positive accepted")
	}
}

func TestAUCDuplicatePositives(t *testing.T) {
	scores := linalg.Vector{3, 1, 2}
	a1, err := AUC(scores, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AUC(scores, []int32{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("duplicates changed AUC: %v vs %v", a1, a2)
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	scores := linalg.Vector{0.9, 0.8, 0.7, 0.1}
	p, err := PrecisionAtK(scores, []int32{0, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("P@2 = %v, want 0.5", p)
	}
	r, err := RecallAtK(scores, []int32{0, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.5 {
		t.Errorf("R@2 = %v, want 0.5", r)
	}
	if _, err := PrecisionAtK(scores, nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RecallAtK(scores, nil, 1); err == nil {
		t.Error("empty positives accepted")
	}
}

// Property: AUC(scores, P) + AUC(scores, complement(P)) == 1 for
// tie-free scores.
func TestQuickAUCComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		scores := make(linalg.Vector, n)
		perm := rng.Perm(n)
		for i, p := range perm {
			scores[i] = float64(p) // distinct values
		}
		nPos := 1 + rng.Intn(n-2)
		var pos, neg []int32
		for i := 0; i < n; i++ {
			if i < nPos {
				pos = append(pos, int32(i))
			} else {
				neg = append(neg, int32(i))
			}
		}
		a1, err1 := AUC(scores, pos)
		a2, err2 := AUC(scores, neg)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a1+a2-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: AUC via rank-sum matches the O(n²) pairwise definition.
func TestQuickAUCMatchesPairwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		scores := make(linalg.Vector, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(6)) // force ties
		}
		nPos := 1 + rng.Intn(n-2)
		var pos []int32
		isPos := make([]bool, n)
		for i := 0; i < nPos; i++ {
			pos = append(pos, int32(i))
			isPos[i] = true
		}
		fast, err := AUC(scores, pos)
		if err != nil {
			return false
		}
		var num, den float64
		for i := 0; i < n; i++ {
			if !isPos[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if isPos[j] {
					continue
				}
				den++
				switch {
				case scores[i] > scores[j]:
					num++
				case scores[i] == scores[j]:
					num += 0.5
				}
			}
		}
		return math.Abs(fast-num/den) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
