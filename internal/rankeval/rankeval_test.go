package rankeval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sourcerank/internal/linalg"
)

func TestRanks(t *testing.T) {
	scores := linalg.Vector{0.1, 0.5, 0.3}
	r := Ranks(scores)
	if r[1] != 0 || r[2] != 1 || r[0] != 2 {
		t.Errorf("ranks = %v", r)
	}
}

func TestRanksTiesDeterministic(t *testing.T) {
	scores := linalg.Vector{0.5, 0.5, 0.5}
	r := Ranks(scores)
	if r[0] != 0 || r[1] != 1 || r[2] != 2 {
		t.Errorf("tie ranks = %v, want index order", r)
	}
}

func TestPercentile(t *testing.T) {
	scores := linalg.Vector{0.1, 0.4, 0.3, 0.2}
	top, err := Percentile(scores, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top != 75 {
		t.Errorf("top percentile = %v, want 75", top)
	}
	bottom, _ := Percentile(scores, 0)
	if bottom != 0 {
		t.Errorf("bottom percentile = %v, want 0", bottom)
	}
	if _, err := Percentile(scores, 9); err == nil {
		t.Error("out-of-range index accepted")
	}
	single, _ := Percentile(linalg.Vector{1}, 0)
	if single != 0 {
		t.Errorf("single-node percentile = %v", single)
	}
}

func TestBuckets(t *testing.T) {
	// 10 nodes with descending scores; nodes 0..9 rank 0..9.
	scores := make(linalg.Vector, 10)
	for i := range scores {
		scores[i] = float64(10 - i)
	}
	counts, err := Buckets(scores, []int32{0, 1, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets of 2: nodes 0,1 in bucket 0; node 9 in bucket 4.
	want := []int{2, 0, 0, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
}

func TestBucketsErrors(t *testing.T) {
	scores := linalg.Vector{1, 2}
	if _, err := Buckets(scores, nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Buckets(scores, nil, 3); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Buckets(scores, []int32{5}, 2); err == nil {
		t.Error("bad marked node accepted")
	}
}

func TestBucketsTotalPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	scores := make(linalg.Vector, 103)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	marked := []int32{1, 5, 50, 100, 102}
	counts, err := Buckets(scores, marked, 20)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != len(marked) {
		t.Errorf("bucket sum = %d, want %d", sum, len(marked))
	}
}

func TestBottomHalf(t *testing.T) {
	scores := linalg.Vector{4, 3, 2, 1}
	bh := BottomHalf(scores)
	if len(bh) != 2 || bh[0] != 2 || bh[1] != 3 {
		t.Errorf("bottom half = %v", bh)
	}
}

func TestKendallTauIdentical(t *testing.T) {
	a := linalg.Vector{3, 1, 2}
	tau, err := KendallTau(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-1) > 1e-12 {
		t.Errorf("tau = %v, want 1", tau)
	}
}

func TestKendallTauReversed(t *testing.T) {
	a := linalg.Vector{1, 2, 3, 4}
	b := linalg.Vector{4, 3, 2, 1}
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau+1) > 1e-12 {
		t.Errorf("tau = %v, want -1", tau)
	}
}

func TestKendallTauMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := make(linalg.Vector, n)
		b := make(linalg.Vector, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		fast, err := KendallTau(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over pairs using the same deterministic ranks.
		ra, rb := Ranks(a), Ranks(b)
		var concordant, discordant int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sa := ra[i] - ra[j]
				sb := rb[i] - rb[j]
				if sa*sb > 0 {
					concordant++
				} else {
					discordant++
				}
			}
		}
		slow := float64(concordant-discordant) / (float64(n) * float64(n-1) / 2)
		if math.Abs(fast-slow) > 1e-12 {
			t.Fatalf("trial %d: fast %v != slow %v", trial, fast, slow)
		}
	}
}

func TestSpearmanFootrule(t *testing.T) {
	a := linalg.Vector{1, 2, 3, 4}
	d, err := SpearmanFootrule(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical footrule = %v", d)
	}
	rev := linalg.Vector{4, 3, 2, 1}
	d, _ = SpearmanFootrule(a, rev)
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("reversed footrule = %v, want 1", d)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := linalg.Vector{10, 9, 1, 2}
	b := linalg.Vector{10, 1, 9, 2}
	ov, err := TopKOverlap(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	// a's top2 = {0,1}; b's top2 = {0,2}: overlap 1/2.
	if ov != 0.5 {
		t.Errorf("overlap = %v, want 0.5", ov)
	}
	if _, err := TopKOverlap(a, b, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopKOverlap(a, linalg.Vector{1}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMeanPercentileOf(t *testing.T) {
	scores := linalg.Vector{4, 3, 2, 1}
	mp, err := MeanPercentileOf(scores, []int32{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: 75; node 3: 0 -> mean 37.5.
	if math.Abs(mp-37.5) > 1e-12 {
		t.Errorf("mean percentile = %v, want 37.5", mp)
	}
	if _, err := MeanPercentileOf(scores, nil); err == nil {
		t.Error("empty marked set accepted")
	}
	if _, err := MeanPercentileOf(scores, []int32{9}); err == nil {
		t.Error("bad marked node accepted")
	}
}

// Property: Kendall τ is symmetric and bounded in [-1, 1].
func TestQuickKendallTauProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		a := make(linalg.Vector, n)
		b := make(linalg.Vector, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		t1, err1 := KendallTau(a, b)
		t2, err2 := KendallTau(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if t1 < -1-1e-12 || t1 > 1+1e-12 {
			return false
		}
		return math.Abs(t1-t2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: percentiles of all nodes average to just under 50.
func TestQuickPercentileMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		scores := make(linalg.Vector, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		var sum float64
		for i := 0; i < n; i++ {
			p, err := Percentile(scores, i)
			if err != nil {
				return false
			}
			sum += p
		}
		mean := sum / float64(n)
		want := 100 * float64(n-1) / (2 * float64(n))
		return math.Abs(mean-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
