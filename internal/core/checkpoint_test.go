package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sourcerank/internal/faultfs"
)

func testKappa(n int) []float64 {
	kappa := make([]float64, n)
	kappa[n-1] = 1
	kappa[n-2] = 1
	return kappa
}

func srckFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".srck") {
			names = append(names, e.Name())
		}
	}
	return names
}

// crashOnce runs RankCheckpointed against a write budget sized to die
// partway through the solve, leaving committed checkpoints behind.
func crashOnce(t *testing.T, dir string, kappa []float64) {
	t.Helper()
	sg := buildSG(t, corpus(t))
	ffs := faultfs.New(nil)
	ffs.SetWriteBudget(600)
	_, _, err := RankCheckpointed(sg, kappa, Config{}, CheckpointConfig{Dir: dir, Every: 5, FS: ffs})
	if !errors.Is(err, faultfs.ErrCrash) {
		t.Fatalf("want simulated crash, got %v", err)
	}
	if len(srckFiles(t, dir)) == 0 {
		t.Fatal("crash left no committed checkpoints; lower the budget granularity")
	}
}

func TestRankCheckpointedMatchesRankBitwise(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, info, err := RankCheckpointed(sg, kappa, Config{}, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 0 {
		t.Fatalf("cold start resumed from %d", info.ResumedFrom)
	}
	if info.Written == 0 {
		t.Fatal("no checkpoints written")
	}
	for i := range ref.Scores {
		if res.Scores[i] != ref.Scores[i] {
			t.Fatalf("score %d: %v != %v", i, res.Scores[i], ref.Scores[i])
		}
	}
	if got := srckFiles(t, dir); len(got) != 0 {
		t.Fatalf("checkpoints not cleared after success: %v", got)
	}
}

func TestRankCheckpointedResumesAfterCrash(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	crashOnce(t, dir, kappa)
	res, info, err := RankCheckpointed(sg, kappa, Config{}, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom == 0 {
		t.Fatal("restart did not resume from a checkpoint")
	}
	for i := range ref.Scores {
		if res.Scores[i] != ref.Scores[i] {
			t.Fatalf("resumed score %d: %v != %v", i, res.Scores[i], ref.Scores[i])
		}
	}
}

func TestRankCheckpointedDiscardsFingerprintMismatch(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappaA := testKappa(sg.NumSources())
	dir := t.TempDir()
	crashOnce(t, dir, kappaA)

	// Same graph, different throttle vector: the old checkpoints answer
	// a different fixed-point equation and must be discarded.
	kappaB := make([]float64, sg.NumSources())
	res, info, err := RankCheckpointed(sg, kappaB, Config{}, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 0 {
		t.Fatalf("resumed from a mismatched checkpoint at iteration %d", info.ResumedFrom)
	}
	if info.Discarded == 0 {
		t.Fatal("mismatched checkpoints not reported as discarded")
	}
	ref, err := Rank(sg, kappaB, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Scores {
		if res.Scores[i] != ref.Scores[i] {
			t.Fatalf("score %d: %v != %v", i, res.Scores[i], ref.Scores[i])
		}
	}
}

func TestRankCheckpointedSkipsCorruptCheckpoint(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	dir := t.TempDir()
	crashOnce(t, dir, kappa)
	names := srckFiles(t, dir)
	// Flip one byte in the newest checkpoint: resume must reject it and
	// fall back (to an older checkpoint or a cold start) without error.
	newest := names[len(names)-1]
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, info, err := RankCheckpointed(sg, kappa, Config{}, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.Discarded == 0 {
		t.Fatal("corrupt checkpoint not reported as discarded")
	}
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Scores {
		if res.Scores[i] != ref.Scores[i] {
			t.Fatalf("score %d: %v != %v", i, res.Scores[i], ref.Scores[i])
		}
	}
}

func TestRankCheckpointedPrunesOldCheckpoints(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	ffs.SetWriteBudget(2000) // enough for many checkpoints before dying
	_, _, err := RankCheckpointed(sg, kappa, Config{}, CheckpointConfig{Dir: dir, Every: 2, Keep: 2, FS: ffs})
	if !errors.Is(err, faultfs.ErrCrash) {
		t.Fatalf("want simulated crash, got %v", err)
	}
	if got := srckFiles(t, dir); len(got) > 3 {
		// Keep newest 2 plus at most the one written after the last prune.
		t.Fatalf("pruning kept %d checkpoints: %v", len(got), got)
	}
}
