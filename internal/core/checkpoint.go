package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strings"

	"sourcerank/internal/durable"
	"sourcerank/internal/linalg"
	"sourcerank/internal/source"
	"sourcerank/internal/throttle"
)

// Checkpointing wraps the power-method solve so a crash mid-computation
// loses at most Every iterations instead of the whole solve. Every N
// iterations the current iterate is committed to the checkpoint
// directory through internal/durable (atomic rename + CRC trailer); on
// the next run the newest valid checkpoint whose graph fingerprint
// matches is used as the warm start, and the iterate sequence — hence
// the final vector — is bit-identical to an uninterrupted run, because
// the parallel SpMV partitions rows and sums each row sequentially, so
// results do not depend on worker count or timing.

// CheckpointConfig configures the resumable solve.
type CheckpointConfig struct {
	// Dir is the checkpoint directory. It must exist.
	Dir string
	// Every is the number of iterations between checkpoints; <= 0
	// defaults to 10.
	Every int
	// Keep is how many recent checkpoints to retain; <= 0 defaults to 2.
	// Older ones are pruned after each successful write.
	Keep int
	// FS overrides the filesystem (fault-injection tests); nil selects
	// the real one.
	FS durable.FS
}

func (c CheckpointConfig) every() int {
	if c.Every <= 0 {
		return 10
	}
	return c.Every
}

func (c CheckpointConfig) keep() int {
	if c.Keep <= 0 {
		return 2
	}
	return c.Keep
}

func (c CheckpointConfig) fs() durable.FS {
	if c.FS == nil {
		return durable.OS{}
	}
	return c.FS
}

// CheckpointInfo reports what the resumable solve did.
type CheckpointInfo struct {
	// ResumedFrom is the iteration of the checkpoint the solve warm-
	// started from; 0 means a cold start.
	ResumedFrom int
	// Written counts checkpoints committed during this run.
	Written int
	// Discarded counts checkpoint files rejected during resume because
	// they were corrupt or their graph fingerprint did not match.
	Discarded int
}

// Checkpoint payload layout (committed inside a durable frame):
//
//	uint32 magic "SRCK", uint32 version,
//	uint64 node count, uint64 graph hash, uint64 iteration,
//	then the iterate as a linalg vector stream.
const (
	ckptMagic   = 0x5352434B // "SRCK"
	ckptVersion = 1
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".srck"
)

// ErrCheckpointInvalid reports a checkpoint file that failed structural
// or fingerprint validation (corrupt frames surface durable.ErrCorrupt).
var ErrCheckpointInvalid = errors.New("core: invalid checkpoint")

// fingerprint identifies the solve a checkpoint belongs to: node count
// plus a 64-bit hash of the throttled matrix structure, weights, α, and
// the warm-start lineage. A checkpoint recorded against a different
// crawl, throttle vector, mixing parameter, or initial iterate must not
// be resumed: two solves from different x0 pass through different
// iterate sequences even though they share a fixed point, so mixing
// their checkpoints would break the bit-identical-resume guarantee.
type fingerprint struct {
	nodes uint64
	hash  uint64
}

func fingerprintOf(t *linalg.CSR, alpha float64, x0 linalg.Vector) fingerprint {
	h := fnv.New64a()
	le := binary.LittleEndian
	var buf [8]byte
	put := func(x uint64) {
		le.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(t.Rows))
	put(uint64(t.NNZ()))
	put(math.Float64bits(alpha))
	for _, p := range t.RowPtr {
		put(uint64(p))
	}
	for _, c := range t.Cols {
		put(uint64(c))
	}
	for _, v := range t.Vals {
		put(math.Float64bits(v))
	}
	// Warm-start provenance: a cold start (nil x0, i.e. the teleport
	// vector) hashes a sentinel; a warm start hashes every iterate bit.
	if x0 == nil {
		put(0)
	} else {
		put(1)
		put(uint64(len(x0)))
		for _, v := range x0 {
			put(math.Float64bits(v))
		}
	}
	return fingerprint{nodes: uint64(t.Rows), hash: h.Sum64()}
}

// withSlab folds a slab header CRC into the fingerprint. Slab-backed
// checkpointed solves iterate the memory-mapped operand, so the resume
// identity must also cover the file the solve will actually read: a
// checkpoint recorded against one slab cannot resume against a swapped
// or re-written one, nor against the in-heap operand (the payload bytes
// themselves are guarded by the durable trailer at open time).
func (fp fingerprint) withSlab(crc uint32) fingerprint {
	h := fnv.New64a()
	le := binary.LittleEndian
	var buf [8]byte
	le.PutUint64(buf[:], fp.hash)
	h.Write(buf[:])
	le.PutUint32(buf[:4], crc)
	h.Write(buf[:4])
	return fingerprint{nodes: fp.nodes, hash: h.Sum64()}
}

func checkpointPath(dir string, iter int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%012d%s", ckptPrefix, iter, ckptSuffix))
}

// writeCheckpoint commits the iterate at the given absolute iteration.
func writeCheckpoint(fsys durable.FS, dir string, fp fingerprint, iter int, x linalg.Vector) error {
	return durable.WriteFile(fsys, checkpointPath(dir, iter), func(w io.Writer) error {
		le := binary.LittleEndian
		if err := binary.Write(w, le, uint32(ckptMagic)); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint32(ckptVersion)); err != nil {
			return err
		}
		if err := binary.Write(w, le, fp.nodes); err != nil {
			return err
		}
		if err := binary.Write(w, le, fp.hash); err != nil {
			return err
		}
		if err := binary.Write(w, le, uint64(iter)); err != nil {
			return err
		}
		return linalg.WriteVector(w, x)
	})
}

// parseCheckpoint validates a checkpoint payload against the expected
// fingerprint and returns the iterate and its iteration number.
func parseCheckpoint(payload []byte, fp fingerprint) (linalg.Vector, int, error) {
	r := bytes.NewReader(payload)
	le := binary.LittleEndian
	var magic, ver uint32
	if err := binary.Read(r, le, &magic); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointInvalid, err)
	}
	if magic != ckptMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %#x", ErrCheckpointInvalid, magic)
	}
	if err := binary.Read(r, le, &ver); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointInvalid, err)
	}
	if ver != ckptVersion {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCheckpointInvalid, ver)
	}
	var nodes, hash, iter uint64
	if err := binary.Read(r, le, &nodes); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointInvalid, err)
	}
	if err := binary.Read(r, le, &hash); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointInvalid, err)
	}
	if err := binary.Read(r, le, &iter); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointInvalid, err)
	}
	if nodes != fp.nodes || hash != fp.hash {
		return nil, 0, fmt.Errorf("%w: fingerprint mismatch (checkpoint %d/%#x, graph %d/%#x)",
			ErrCheckpointInvalid, nodes, hash, fp.nodes, fp.hash)
	}
	x, err := linalg.ReadVector(r)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointInvalid, err)
	}
	if uint64(len(x)) != nodes {
		return nil, 0, fmt.Errorf("%w: iterate length %d, fingerprint says %d nodes",
			ErrCheckpointInvalid, len(x), nodes)
	}
	return x, int(iter), nil
}

// listCheckpoints returns committed checkpoint file names in the
// directory, newest (highest iteration) first.
func listCheckpoints(fsys durable.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix) {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded iteration sorts lexically
	return names, nil
}

// resumeCheckpoint loads the newest valid checkpoint matching fp.
// Corrupt files and fingerprint mismatches are discarded (removed
// best-effort) and the scan continues; with nothing valid it returns a
// nil iterate for a cold start.
func resumeCheckpoint(fsys durable.FS, dir string, fp fingerprint, info *CheckpointInfo) (linalg.Vector, int, error) {
	names, err := listCheckpoints(fsys, dir)
	if err != nil {
		return nil, 0, err
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		payload, err := durable.ReadFile(fsys, path)
		if err != nil {
			if errors.Is(err, durable.ErrCorrupt) {
				info.Discarded++
				_ = fsys.Remove(path)
				continue
			}
			return nil, 0, err
		}
		x, iter, err := parseCheckpoint(payload, fp)
		if err != nil {
			info.Discarded++
			_ = fsys.Remove(path)
			continue
		}
		return x, iter, nil
	}
	return nil, 0, nil
}

// pruneCheckpoints removes all but the keep newest checkpoints.
func pruneCheckpoints(fsys durable.FS, dir string, keep int) {
	names, err := listCheckpoints(fsys, dir)
	if err != nil {
		return
	}
	for _, name := range names[min(keep, len(names)):] {
		_ = fsys.Remove(filepath.Join(dir, name))
	}
}

// clearCheckpoints removes every checkpoint after a completed solve.
func clearCheckpoints(fsys durable.FS, dir string) {
	names, err := listCheckpoints(fsys, dir)
	if err != nil {
		return
	}
	for _, name := range names {
		_ = fsys.Remove(filepath.Join(dir, name))
	}
}

// RankCheckpointed computes Spam-Resilient SourceRank like Rank, but
// persists the iterate every ck.Every iterations and warm-starts from
// the newest valid checkpoint in ck.Dir (through the same mechanism as
// RankFrom). Checkpoints recorded against a different graph, throttle
// vector, α, or slab backing are discarded. On convergence the
// checkpoints are cleared. Only the Power solver is supported;
// cfg.Solver is ignored. With cfg.SlabDir set the solve streams the
// committed slab under cfg.MaxResident like Rank does, and the resume
// fingerprint additionally covers the slab's header CRC.
//
// The resumed iterate sequence is identical to an uninterrupted run, so
// a solve killed and restarted any number of times returns the same
// vector bit for bit.
func RankCheckpointed(sg *source.Graph, kappa []float64, cfg Config, ck CheckpointConfig) (*Result, CheckpointInfo, error) {
	var info CheckpointInfo
	if sg == nil || sg.NumSources() == 0 {
		return nil, info, errors.New("core: empty source graph")
	}
	if ck.Dir == "" {
		return nil, info, errors.New("core: checkpoint directory not set")
	}
	if cfg.Precision == linalg.Float32 {
		// Checkpointing persists and fingerprints float64 iterates through
		// the solver's Progress hook, which the float32 kernels never
		// materialize; rejecting here keeps checkpoint fingerprints and
		// resume semantics byte-identical to the reference path.
		return nil, info, errors.New("core: checkpointing requires the float64 solve (Config.Precision)")
	}
	fsys := ck.fs()
	tpp, err := throttle.Apply(sg.T, kappa)
	if err != nil {
		return nil, info, fmt.Errorf("core: applying throttle: %w", err)
	}
	warm := sanitizeWarmStart(cfg.X0)
	if warm != nil && len(warm) != sg.NumSources() {
		return nil, info, linalg.ErrDimension
	}
	op, err := cfg.solveOperand(throttledTranspose(sg, tpp, cfg.Workers))
	if err != nil {
		return nil, info, err
	}
	defer op.close()
	fp := fingerprintOf(tpp, cfg.alpha(), warm)
	if op.slabPath != "" {
		si, err := linalg.ReadSlabInfo(nil, op.slabPath)
		if err != nil {
			return nil, info, fmt.Errorf("core: fingerprinting slab: %w", err)
		}
		fp = fp.withSlab(si.HeaderCRC)
	}
	x0, startIter, err := resumeCheckpoint(fsys, ck.Dir, fp, &info)
	if err != nil {
		return nil, info, fmt.Errorf("core: scanning checkpoints: %w", err)
	}
	info.ResumedFrom = startIter
	if x0 == nil {
		// No resumable checkpoint: start from the configured warm-start
		// vector (nil falls through to the teleport cold start).
		x0 = warm
	}

	every, keep := ck.every(), ck.keep()
	tele := linalg.NewUniformVector(sg.NumSources())
	opt := linalg.SolverOptions{
		Tol: cfg.Tol, MaxIter: cfg.MaxIter, Workers: cfg.Workers, CheckEvery: cfg.CheckEvery,
		Progress: func(iter int, x linalg.Vector) error {
			if iter%every != 0 {
				return nil
			}
			if err := writeCheckpoint(fsys, ck.Dir, fp, startIter+iter, x); err != nil {
				return fmt.Errorf("core: writing checkpoint at iteration %d: %w", startIter+iter, err)
			}
			info.Written++
			pruneCheckpoints(fsys, ck.Dir, keep)
			return nil
		},
	}
	scores, stats, err := linalg.PowerMethodT(op.m, cfg.alpha(), tele, x0, opt)
	if err != nil {
		return nil, info, err
	}
	clearCheckpoints(fsys, ck.Dir)
	return &Result{
		Scores:    scores,
		Kappa:     append([]float64(nil), kappa...),
		Throttled: tpp,
		Stats:     stats,
	}, info, nil
}
