package core

import (
	"errors"
	"testing"

	"sourcerank/internal/faultfs"
	"sourcerank/internal/gen"
	"sourcerank/internal/linalg"
	"sourcerank/internal/source"
	"sourcerank/internal/spam"
)

// pipelineCfg is the shared small-corpus pipeline configuration.
func pipelineCfg(seeds []int32, topK int) PipelineConfig {
	return PipelineConfig{SpamSeeds: seeds, TopK: topK}
}

// TestPipelineWarmStartFewerIterations perturbs a generated web graph by
// a small spam injection (≪5% of links) and checks that feeding the
// previous pipeline's σ and proximity back through Config.X0/ProximityX0
// converges in strictly fewer iterations while landing on the same
// ranks within solver tolerance.
func TestPipelineWarmStartFewerIterations(t *testing.T) {
	ds, err := gen.GeneratePreset(gen.UK2002, 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	pg := ds.Pages
	sg := buildSG(t, pg)
	cfg := pipelineCfg(ds.SpamSources, sg.NumSources()/40)
	prev, err := PipelineFromSourceGraph(sg, cfg)
	if err != nil {
		t.Fatal(err)
	}

	attacked := pg.Clone()
	if _, err := spam.InjectIntraSource(attacked, ds.SpamSources[0], 10); err != nil {
		t.Fatal(err)
	}
	sg2, err := source.Build(attacked, source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg2.NumSources() != sg.NumSources() {
		t.Fatalf("perturbation changed source count: %d -> %d", sg.NumSources(), sg2.NumSources())
	}

	cold, err := PipelineFromSourceGraph(sg2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.X0 = prev.Scores
	warmCfg.ProximityX0 = prev.Proximity
	warm, err := PipelineFromSourceGraph(sg2, warmCfg)
	if err != nil {
		t.Fatal(err)
	}

	if warm.Stats.Iterations >= cold.Stats.Iterations {
		t.Errorf("warm solve took %d iterations, cold %d", warm.Stats.Iterations, cold.Stats.Iterations)
	}
	if warm.ProximityStats.Iterations >= cold.ProximityStats.Iterations {
		t.Errorf("warm proximity took %d iterations, cold %d",
			warm.ProximityStats.Iterations, cold.ProximityStats.Iterations)
	}
	if d := linalg.L2Distance(warm.Scores, cold.Scores); d > 1e-7 {
		t.Errorf("warm ranks differ from cold by %g", d)
	}
	if d := linalg.L2Distance(warm.Proximity, cold.Proximity); d > 1e-7 {
		t.Errorf("warm proximity differs from cold by %g", d)
	}
}

// TestConfigX0DimensionError: a wrong-length warm start must error, not
// silently mis-solve.
func TestConfigX0DimensionError(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	if _, err := Rank(sg, kappa, Config{X0: linalg.NewUniformVector(sg.NumSources() + 1)}); err == nil {
		t.Error("wrong-length X0 accepted")
	}
}

// TestJacobiIgnoresX0: the Jacobi path documents that it ignores X0 —
// results must match the no-X0 Jacobi solve exactly.
func TestJacobiIgnoresX0(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	plain, err := Rank(sg, kappa, Config{Solver: Jacobi})
	if err != nil {
		t.Fatal(err)
	}
	withX0, err := Rank(sg, kappa, Config{Solver: Jacobi, X0: linalg.NewUniformVector(sg.NumSources())})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Scores {
		if plain.Scores[i] != withX0.Scores[i] {
			t.Fatalf("score %d: %v != %v", i, plain.Scores[i], withX0.Scores[i])
		}
	}
}

// TestRankCheckpointedWarmStartLineage: checkpoints written by a solve
// with one x0 lineage must be discarded by a solve with another — a
// cold-start resume mixing warm-start iterates (or vice versa) would
// silently break the bit-identical-resume guarantee.
func TestRankCheckpointedWarmStartLineage(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	dir := t.TempDir()

	// Crash a cold-start solve mid-way, leaving cold-lineage checkpoints.
	crashOnce(t, dir, kappa)

	// A warm-started solve over the same graph/κ/α must not resume them.
	warmX0 := linalg.NewUniformVector(sg.NumSources())
	warmX0[0] *= 2
	warmX0.Normalize1()
	res, info, err := RankCheckpointed(sg, kappa, Config{X0: warmX0}, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 0 {
		t.Fatalf("warm-start solve resumed a cold-lineage checkpoint at iteration %d", info.ResumedFrom)
	}
	if info.Discarded == 0 {
		t.Fatal("cold-lineage checkpoints not discarded")
	}
	// And it still converges to the reference fixed point.
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.L2Distance(res.Scores, ref.Scores); d > 1e-7 {
		t.Errorf("warm checkpointed solve differs from reference by %g", d)
	}
}

// TestRankCheckpointedWarmStartResume: warm-started checkpointed solves
// resume bit-identically within the same lineage.
func TestRankCheckpointedWarmStartResume(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	warmX0 := linalg.NewUniformVector(sg.NumSources())
	warmX0[1] *= 3
	warmX0.Normalize1()

	ref, _, err := RankCheckpointed(sg, kappa, Config{X0: warmX0}, CheckpointConfig{Dir: t.TempDir(), Every: 5})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// First run crashes partway through on a write budget, leaving
	// committed warm-lineage checkpoints behind.
	ffs := faultfs.New(nil)
	ffs.SetWriteBudget(600)
	_, _, err = RankCheckpointed(sg, kappa, Config{X0: warmX0}, CheckpointConfig{Dir: dir, Every: 5, FS: ffs})
	if !errors.Is(err, faultfs.ErrCrash) {
		t.Fatalf("want simulated crash, got %v", err)
	}
	if len(srckFiles(t, dir)) == 0 {
		t.Fatal("crash left no committed checkpoints")
	}
	res, info, err := RankCheckpointed(sg, kappa, Config{X0: warmX0}, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom == 0 {
		t.Fatal("second run did not resume from the partial solve's checkpoints")
	}
	for i := range ref.Scores {
		if res.Scores[i] != ref.Scores[i] {
			t.Fatalf("resumed warm score %d: %v != %v", i, res.Scores[i], ref.Scores[i])
		}
	}
}
