package core

import (
	"fmt"
	"math"

	"sourcerank/internal/graph"
	"sourcerank/internal/linalg"
	"sourcerank/internal/rank"
	"sourcerank/internal/source"
	"sourcerank/internal/throttle"
)

// boundaryGap is the guard band on the top-k selection boundary under a
// warm-started proximity walk. A warm walk converges to within roughly
// Tol/(1-β) of the cold fixed point per entry (≈7e-9 at the defaults),
// so when the gap between the k-th and (k+1)-th warm scores exceeds this
// guard the warm and cold walks provably select the same top-k set. A
// smaller gap means the boundary is contested and the walk is recomputed
// cold, which makes the κ assignment bitwise identical to a cold
// rebuild's by construction rather than by tolerance.
const boundaryGap = 1e-6

// RefreshState carries the reusable artifacts of the previous refresh.
// The zero value means "no history" and makes PipelineRefresh behave as
// a cold pipeline run; afterwards the state is updated in place. The
// stream pipeline owns exactly one RefreshState and never shares its
// mutable fields (Kappa in particular is a working buffer patched in
// place between refreshes).
type RefreshState struct {
	// T is the source transition matrix the state below was computed
	// from. Pointer equality with the current sg.T proves the consensus
	// weights are unchanged and unlocks the skip-solve fast path.
	T *linalg.CSR
	// Proximity is the previous spam-proximity vector, used to
	// warm-start the next walk.
	Proximity linalg.Vector
	// Kappa is the working throttling vector, patched in place by
	// PatchTopK. Results expose defensive copies, never this buffer.
	Kappa []float64
	// Scores is the previous SRSR vector, used to warm-start the next
	// stationary solve — and returned pointer-identical when the solve
	// is skipped, so downstream caches can reuse whole encodings.
	Scores linalg.Vector
	// Throttled and ThrottledT cache T″ and its transpose so an
	// unchanged (T, κ) pair skips both the throttle transform and the
	// transpose.
	Throttled  *linalg.CSR
	ThrottledT *linalg.CSR
}

// RefreshInfo reports which incremental paths a refresh took; the bench
// and the equivalence suite key off it.
type RefreshInfo struct {
	// KappaChanged is the number of κ entries that flipped.
	KappaChanged int
	// BoundaryGap is the top-k selection margin of the warm proximity
	// vector (+Inf when k clamps to the whole range or to nothing).
	BoundaryGap float64
	// ProximityCold reports that the proximity walk ran cold-started —
	// either the first refresh, a contested boundary (gap under the
	// guard), or Graded mode, which needs the full cold vector because
	// every κ value depends on it.
	ProximityCold bool
	// SolveSkipped reports that T and κ were unchanged and a one-step
	// residual probe confirmed the previous scores still satisfy the
	// convergence threshold, so the solve was skipped entirely and the
	// previous score vector was returned pointer-identical.
	SolveSkipped bool
}

// PipelineRefresh runs the proximity → throttle → solve pipeline
// incrementally against the previous refresh's state. The contract
// mirrors PipelineFromSourceGraph: the returned κ is bitwise identical
// to what a cold pipeline over the same source graph would assign (see
// boundaryGap), and the scores satisfy the same convergence threshold
// against the same fixed point. structure must present the same
// successor rows as sg.Structure(); the stream pipeline passes the
// incrementally maintained overlay so no CSR rebuild is paid here.
//
// Checkpointing and the Jacobi solver are cold-pipeline features;
// configuring either returns an error.
func PipelineRefresh(sg *source.Graph, structure graph.Topology, cfg PipelineConfig, st *RefreshState) (*PipelineResult, RefreshInfo, error) {
	info := RefreshInfo{}
	if sg == nil || sg.NumSources() == 0 {
		return nil, info, fmt.Errorf("core: empty source graph")
	}
	if cfg.Checkpoint != nil {
		return nil, info, fmt.Errorf("core: PipelineRefresh does not support checkpointing")
	}
	if cfg.Solver != Power {
		return nil, info, fmt.Errorf("core: PipelineRefresh requires the Power solver")
	}
	if st == nil {
		st = &RefreshState{}
	}
	n := sg.NumSources()

	// Fast path: consensus weights unchanged (Emit returned a graph
	// sharing the previous T). Proximity and κ depend only on the
	// structure — the sparsity of the unchanged Counts — so both carry
	// over verbatim; a single power step probes whether the previous
	// scores still meet the convergence threshold.
	if st.T != nil && sg.T == st.T && st.Scores != nil && st.Proximity != nil {
		// κ carries over unchanged; there is no contested boundary.
		info.BoundaryGap = math.Inf(1)
		res, skipped, err := probeOrSolve(sg, cfg, st)
		if err != nil {
			return nil, info, err
		}
		info.SolveSkipped = skipped
		return &PipelineResult{
			Result:      *res,
			SourceGraph: sg,
			Proximity:   st.Proximity,
		}, info, nil
	}

	// Proximity walk. Graded κ depends on every proximity value, not
	// just the top-k membership, so only the binary assignment can
	// tolerate a warm (tolerance-equal rather than bitwise-equal) walk.
	var x0 linalg.Vector
	if !cfg.Graded && st.Proximity != nil {
		x0 = sanitizeWarmStart(padded(st.Proximity, n))
	}
	info.ProximityCold = x0 == nil
	prox, pstats, err := throttle.SpamProximity(structure, cfg.SpamSeeds, throttle.ProximityOptions{
		Beta: cfg.Beta, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Workers: cfg.Workers, X0: x0,
	})
	if err != nil {
		return nil, info, fmt.Errorf("core: spam proximity: %w", err)
	}

	// κ assignment over the warm walk, with the cold fallback when the
	// selection boundary is contested.
	if cfg.Graded {
		st.Kappa = throttle.Graded(prox, cfg.TopK, cfg.GradedMax)
		info.KappaChanged = n
		info.BoundaryGap = 0
	} else {
		if st.Kappa = padded(st.Kappa, n); st.Kappa == nil {
			st.Kappa = make([]float64, n)
		}
		changed, gap := throttle.PatchTopK(st.Kappa, prox, cfg.TopK)
		if gap < boundaryGap && !info.ProximityCold {
			info.ProximityCold = true
			prox, pstats, err = throttle.SpamProximity(structure, cfg.SpamSeeds, throttle.ProximityOptions{
				Beta: cfg.Beta, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, info, fmt.Errorf("core: spam proximity (cold fallback): %w", err)
			}
			changed, gap = throttle.PatchTopK(st.Kappa, prox, cfg.TopK)
		}
		info.KappaChanged, info.BoundaryGap = changed, gap
	}
	st.Proximity = prox

	// Throttle + transpose + warm stationary solve, the exact operator
	// sequence of Rank.
	tpp, err := throttle.Apply(sg.T, st.Kappa)
	if err != nil {
		return nil, info, fmt.Errorf("core: applying throttle: %w", err)
	}
	tppT := throttledTranspose(sg, tpp, cfg.Workers)
	solveCfg := cfg.Config
	solveCfg.X0 = padded(st.Scores, n)
	r, err := rank.StationaryT(tppT, solveCfg.rankOptions())
	if err != nil {
		return nil, info, err
	}
	st.T, st.Scores, st.Throttled, st.ThrottledT = sg.T, r.Scores, tpp, tppT
	return &PipelineResult{
		Result: Result{
			Scores:    r.Scores,
			Kappa:     append([]float64(nil), st.Kappa...),
			Throttled: tpp,
			Stats:     r.Stats,
		},
		SourceGraph:    sg,
		Proximity:      prox,
		ProximityStats: pstats,
	}, info, nil
}

// probeOrSolve handles the unchanged-(T,κ) case: one fused power step
// from the previous scores measures the residual; within tolerance the
// previous vector is returned untouched (pointer-identical), otherwise
// the solve resumes warm on the cached transpose.
func probeOrSolve(sg *source.Graph, cfg PipelineConfig, st *RefreshState) (*Result, bool, error) {
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-9
	}
	n := sg.NumSources()
	tele := linalg.NewUniformVector(n)
	fp, err := linalg.NewFusedPower(st.ThrottledT, cfg.alpha(), tele, linalg.ResidualL2, cfg.Workers)
	if err != nil {
		return nil, false, fmt.Errorf("core: residual probe: %w", err)
	}
	defer fp.Close()
	dst := linalg.NewVector(n)
	residual := fp.Step(dst, st.Scores, true)
	res := &Result{
		Kappa:     append([]float64(nil), st.Kappa...),
		Throttled: st.Throttled,
	}
	if residual <= tol {
		res.Scores = st.Scores
		res.Stats = linalg.IterStats{Iterations: 0, Residual: residual, Converged: true}
		return res, true, nil
	}
	solveCfg := cfg.Config
	solveCfg.X0 = st.Scores
	r, err := rank.StationaryT(st.ThrottledT, solveCfg.rankOptions())
	if err != nil {
		return nil, false, err
	}
	st.Scores = r.Scores
	res.Scores, res.Stats = r.Scores, r.Stats
	return res, false, nil
}

// padded zero-extends v to length n, reusing v when already long
// enough. Nil stays nil.
func padded(v []float64, n int) []float64 {
	switch {
	case v == nil:
		return nil
	case len(v) >= n:
		return v[:n]
	default:
		return append(append(make([]float64, 0, n), v...), make([]float64, n-len(v))...)
	}
}
