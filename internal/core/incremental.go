package core

import (
	"errors"

	"sourcerank/internal/linalg"
	"sourcerank/internal/source"
	"sourcerank/internal/throttle"
)

// RankFrom computes Spam-Resilient SourceRank warm-started from a
// previous score vector. When the source graph changed only slightly —
// a spam injection, a recrawl of one site — the old stationary vector is
// an excellent initial iterate and the power method converges in a
// fraction of the cold-start iterations. prev must have one entry per
// source and is not modified.
//
// Only the Power solver supports warm starting; cfg.Solver is ignored.
func RankFrom(sg *source.Graph, kappa []float64, prev linalg.Vector, cfg Config) (*Result, error) {
	if sg == nil || sg.NumSources() == 0 {
		return nil, errors.New("core: empty source graph")
	}
	if len(prev) != sg.NumSources() {
		return nil, linalg.ErrDimension
	}
	tpp, err := throttle.Apply(sg.T, kappa)
	if err != nil {
		return nil, err
	}
	x0 := prev.Clone()
	if !x0.Normalize1() {
		// Degenerate previous vector: fall back to uniform.
		x0 = linalg.NewUniformVector(sg.NumSources())
	}
	tele := linalg.NewUniformVector(sg.NumSources())
	scores, stats, err := linalg.PowerMethodT(throttledTranspose(sg, tpp, cfg.Workers), cfg.alpha(), tele, x0, linalg.SolverOptions{
		Tol: cfg.Tol, MaxIter: cfg.MaxIter, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Scores:    scores,
		Kappa:     append([]float64(nil), kappa...),
		Throttled: tpp,
		Stats:     stats,
	}, nil
}
