package core

import (
	"errors"

	"sourcerank/internal/linalg"
	"sourcerank/internal/source"
)

// RankFrom computes Spam-Resilient SourceRank warm-started from a
// previous score vector. When the source graph changed only slightly —
// a spam injection, a recrawl of one site — the old stationary vector is
// an excellent initial iterate and the power method converges in a
// fraction of the cold-start iterations. prev must have one entry per
// source and is not modified.
//
// Only the Power solver supports warm starting; cfg.Solver is ignored.
func RankFrom(sg *source.Graph, kappa []float64, prev linalg.Vector, cfg Config) (*Result, error) {
	if sg == nil || sg.NumSources() == 0 {
		return nil, errors.New("core: empty source graph")
	}
	if len(prev) != sg.NumSources() {
		return nil, linalg.ErrDimension
	}
	// Rank's Power path sanitizes Config.X0 (clone + L1-normalize,
	// degenerate → cold start) and threads it into the power method, so
	// warm starting is just a Config.
	cfg.X0 = prev
	cfg.Solver = Power
	return Rank(sg, kappa, cfg)
}
