package core

import (
	"sync"
	"testing"

	"sourcerank/internal/linalg"
)

// TestConcurrentRanking verifies that a source graph is safe for
// concurrent read-only use: many goroutines ranking with different κ
// vectors simultaneously must neither race (run with -race) nor perturb
// each other's results.
func TestConcurrentRanking(t *testing.T) {
	sg := buildSG(t, corpus(t))
	n := sg.NumSources()

	reference := make([]linalg.Vector, 4)
	kappas := make([][]float64, 4)
	for i := range kappas {
		kappa := make([]float64, n)
		for j := range kappa {
			if (j+i)%3 == 0 {
				kappa[j] = float64(i) / 4
			}
		}
		kappas[i] = kappa
		res, err := Rank(sg, kappa, Config{})
		if err != nil {
			t.Fatal(err)
		}
		reference[i] = res.Scores
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for round := 0; round < 8; round++ {
		for i := range kappas {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := Rank(sg, kappas[i], Config{})
				if err != nil {
					errs <- err
					return
				}
				if d := linalg.L2Distance(res.Scores, reference[i]); d != 0 {
					t.Errorf("concurrent run %d diverged by %g", i, d)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
