package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"sourcerank/internal/pagegraph"
	"sourcerank/internal/source"
)

func refreshPageGraph(rng *rand.Rand, sources, pages, links int) *pagegraph.Graph {
	pg := pagegraph.New()
	for s := 0; s < sources; s++ {
		pg.AddSource(fmt.Sprintf("s%03d", s))
	}
	for p := 0; p < pages; p++ {
		pg.AddPage(pagegraph.SourceID(rng.Intn(sources)))
	}
	for l := 0; l < links; l++ {
		pg.AddLink(pagegraph.PageID(rng.Intn(pages)), pagegraph.PageID(rng.Intn(pages)))
	}
	return pg
}

func refreshTargets(pg *pagegraph.Graph, p pagegraph.PageID) []pagegraph.SourceID {
	var s []pagegraph.SourceID
	for _, q := range pg.OutLinks(p) {
		s = append(s, pg.SourceOf(q))
	}
	slices.Sort(s)
	return slices.Compact(s)
}

func refreshDiff(oldSet, newSet []pagegraph.SourceID) (removed, added []pagegraph.SourceID) {
	i, j := 0, 0
	for i < len(oldSet) || j < len(newSet) {
		switch {
		case j == len(newSet) || (i < len(oldSet) && oldSet[i] < newSet[j]):
			removed = append(removed, oldSet[i])
			i++
		case i == len(oldSet) || newSet[j] < oldSet[i]:
			added = append(added, newSet[j])
			j++
		default:
			i++
			j++
		}
	}
	return removed, added
}

// TestPipelineRefreshMatchesCold drives random page churn through the
// incremental source maintainer and checks the refresh contract after
// every step: κ bitwise identical to a cold pipeline over the same
// source graph, scores within solver tolerance of the cold scores.
func TestPipelineRefreshMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pg := refreshPageGraph(rng, 15, 90, 260)
	inc, err := source.NewIncremental(pg, source.Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	cfg := PipelineConfig{
		SpamSeeds: []int32{0, 3, 7},
		TopK:      4,
	}
	st := &RefreshState{}
	for step := 0; step < 60; step++ {
		if step > 0 {
			for m := 0; m < 1+rng.Intn(3); m++ {
				switch op := rng.Intn(10); {
				case op == 0:
					id := pg.AddSource(fmt.Sprintf("x%03d", step))
					inc.AddSource(pg.SourceLabel(id))
				case op == 1:
					s := pagegraph.SourceID(rng.Intn(pg.NumSources()))
					pg.AddPage(s)
					inc.AddPage(s)
				default:
					p := pagegraph.PageID(rng.Intn(pg.NumPages()))
					before := refreshTargets(pg, p)
					row := slices.Clone(pg.OutLinks(p))
					if len(row) > 0 && rng.Intn(2) == 0 {
						row = slices.Delete(row, 0, 1)
					} else {
						row = append(row, pagegraph.PageID(rng.Intn(pg.NumPages())))
					}
					if err := pg.SetOutLinks(p, row); err != nil {
						t.Fatalf("SetOutLinks: %v", err)
					}
					removed, added := refreshDiff(before, refreshTargets(pg, p))
					inc.UpdatePage(pg.SourceOf(p), removed, added)
				}
			}
		}
		sg := inc.Emit()
		got, info, err := PipelineRefresh(sg, inc.Structure(), cfg, st)
		if err != nil {
			t.Fatalf("step %d: PipelineRefresh: %v", step, err)
		}
		coldSG, err := source.Build(pg, source.Options{})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		want, err := PipelineFromSourceGraph(coldSG, cfg)
		if err != nil {
			t.Fatalf("step %d: cold pipeline: %v", step, err)
		}
		if !slices.Equal(got.Kappa, want.Kappa) {
			t.Fatalf("step %d: κ diverged from cold rebuild (gap=%v cold=%v)",
				step, info.BoundaryGap, info.ProximityCold)
		}
		var maxDiff float64
		for i := range want.Scores {
			if d := math.Abs(got.Scores[i] - want.Scores[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-6 {
			t.Fatalf("step %d: scores drifted %v from cold rebuild", step, maxDiff)
		}
		inc.CompactStructure(16)
	}
}

// TestPipelineRefreshSkipsSolve pins the fast path: an emit with
// unchanged consensus weights reuses the previous score vector
// pointer-identically after a one-step residual probe.
func TestPipelineRefreshSkipsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pg := refreshPageGraph(rng, 10, 50, 140)
	inc, err := source.NewIncremental(pg, source.Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	cfg := PipelineConfig{SpamSeeds: []int32{1, 2}, TopK: 3}
	st := &RefreshState{}
	sg := inc.Emit()
	first, info, err := PipelineRefresh(sg, inc.Structure(), cfg, st)
	if err != nil {
		t.Fatalf("initial refresh: %v", err)
	}
	if info.SolveSkipped || !info.ProximityCold {
		t.Fatalf("initial refresh should run the cold pipeline, got %+v", info)
	}

	// Page-count-only churn shares T, so the probe must skip the solve.
	inc.AddPage(0)
	sg2 := inc.Emit()
	if sg2.T != sg.T {
		t.Fatal("page-count churn should share T")
	}
	second, info, err := PipelineRefresh(sg2, inc.Structure(), cfg, st)
	if err != nil {
		t.Fatalf("skip refresh: %v", err)
	}
	if !info.SolveSkipped {
		t.Fatalf("expected skipped solve, got %+v", info)
	}
	if &second.Scores[0] != &first.Scores[0] {
		t.Fatal("skipped solve must return the identical score vector")
	}
	if !second.Stats.Converged || second.Stats.Iterations != 0 {
		t.Fatalf("skip stats should report converged probe, got %+v", second.Stats)
	}
	if second.Proximity == nil || &second.Proximity[0] != &first.Proximity[0] {
		t.Fatal("skipped refresh must carry the proximity vector over")
	}
}
