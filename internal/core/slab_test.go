package core

import (
	"math"
	"testing"

	"sourcerank/internal/linalg"
)

// TestRankSlabBitwiseIdentical pins Config.SlabDir to the in-memory
// path: every solver × precision combination must produce byte-identical
// scores whether the throttled transpose is iterated from the heap or
// from a memory-mapped slab, with and without a residency budget.
func TestRankSlabBitwiseIdentical(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	kappa[4], kappa[5] = 1, 1

	for _, solver := range []Solver{Power, Jacobi} {
		for _, prec := range []linalg.Precision{linalg.Float64, linalg.Float32} {
			base := Config{Solver: solver, Precision: prec, Workers: 2}
			ref, err := Rank(sg, kappa, base)
			if err != nil {
				t.Fatalf("in-memory (solver=%v prec=%v): %v", solver, prec, err)
			}
			for _, maxResident := range []int64{0, 4096} {
				cfg := base
				cfg.SlabDir = t.TempDir()
				cfg.MaxResident = maxResident
				got, err := Rank(sg, kappa, cfg)
				if err != nil {
					t.Fatalf("slab (solver=%v prec=%v res=%d): %v", solver, prec, maxResident, err)
				}
				if got.Stats.Iterations != ref.Stats.Iterations {
					t.Fatalf("solver=%v prec=%v: iteration count diverges", solver, prec)
				}
				for i := range ref.Scores {
					if math.Float64bits(ref.Scores[i]) != math.Float64bits(got.Scores[i]) {
						t.Fatalf("solver=%v prec=%v res=%d: score %d bits diverge",
							solver, prec, maxResident, i)
					}
				}
			}
		}
	}
}

// TestPipelineSlabBitwiseIdentical runs the whole pipeline (proximity,
// κ assignment, solve) with a slab-backed final solve.
func TestPipelineSlabBitwiseIdentical(t *testing.T) {
	g := corpus(t)
	mk := func(slabDir string) PipelineConfig {
		cfg := PipelineConfig{SpamSeeds: []int32{4}, TopK: 2}
		cfg.SlabDir = slabDir
		cfg.MaxResident = 1024
		return cfg
	}
	ref, err := Pipeline(g, mk(""))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Pipeline(g, mk(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Scores {
		if math.Float64bits(ref.Scores[i]) != math.Float64bits(got.Scores[i]) {
			t.Fatalf("pipeline score %d diverges under slab backing", i)
		}
	}
}
