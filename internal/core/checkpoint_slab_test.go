package core

import (
	"errors"
	"math"
	"testing"

	"sourcerank/internal/faultfs"
)

// TestRankCheckpointedSlabBitwise lifts the historical SlabDir rejection:
// a checkpointed solve over a residency-capped slab operand must write
// and clear checkpoints like the in-heap one and land on bitwise the
// same scores as the plain in-heap Rank.
func TestRankCheckpointedSlabBitwise(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 2}
	cfg.SlabDir = t.TempDir()
	cfg.MaxResident = 4096
	dir := t.TempDir()
	res, info, err := RankCheckpointed(sg, kappa, cfg, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 0 {
		t.Fatalf("cold start resumed from %d", info.ResumedFrom)
	}
	if info.Written == 0 {
		t.Fatal("no checkpoints written")
	}
	for i := range ref.Scores {
		if math.Float64bits(res.Scores[i]) != math.Float64bits(ref.Scores[i]) {
			t.Fatalf("slab-checkpointed score %d: %v != in-heap %v", i, res.Scores[i], ref.Scores[i])
		}
	}
	if got := srckFiles(t, dir); len(got) != 0 {
		t.Fatalf("checkpoints not cleared after success: %v", got)
	}
}

// TestRankCheckpointedSlabResumesAfterCrash crashes a slab-backed
// checkpointed solve partway, restarts it against the same slab
// directory, and demands a warm resume that still reproduces the
// uninterrupted in-heap solve bit for bit.
func TestRankCheckpointedSlabResumesAfterCrash(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.SlabDir = t.TempDir()
	cfg.MaxResident = 4096
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	ffs.SetWriteBudget(600)
	if _, _, err := RankCheckpointed(sg, kappa, cfg, CheckpointConfig{Dir: dir, Every: 5, FS: ffs}); !errors.Is(err, faultfs.ErrCrash) {
		t.Fatalf("want simulated crash, got %v", err)
	}
	if len(srckFiles(t, dir)) == 0 {
		t.Fatal("crash left no committed checkpoints; lower the budget granularity")
	}
	res, info, err := RankCheckpointed(sg, kappa, cfg, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom == 0 {
		t.Fatal("restart did not resume from a checkpoint")
	}
	for i := range ref.Scores {
		if math.Float64bits(res.Scores[i]) != math.Float64bits(ref.Scores[i]) {
			t.Fatalf("resumed slab score %d: %v != %v", i, res.Scores[i], ref.Scores[i])
		}
	}
}

// TestRankCheckpointedSlabBackingMismatchDiscarded pins the fingerprint
// extension: checkpoints recorded by an in-heap solve answer the same
// fixed point but a different resume identity, so a slab-backed restart
// must discard them and cold-start — and vice versa a slab checkpoint
// never leaks into an in-heap resume.
func TestRankCheckpointedSlabBackingMismatchDiscarded(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	dir := t.TempDir()
	crashOnce(t, dir, kappa) // in-heap checkpoints

	cfg := Config{}
	cfg.SlabDir = t.TempDir()
	res, info, err := RankCheckpointed(sg, kappa, cfg, CheckpointConfig{Dir: dir, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 0 {
		t.Fatalf("slab solve resumed from an in-heap checkpoint at iteration %d", info.ResumedFrom)
	}
	if info.Discarded == 0 {
		t.Fatal("in-heap checkpoints not reported as discarded")
	}
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Scores {
		if math.Float64bits(res.Scores[i]) != math.Float64bits(ref.Scores[i]) {
			t.Fatalf("score %d: %v != %v", i, res.Scores[i], ref.Scores[i])
		}
	}
}

// TestFingerprintWithSlab pins the mixing primitive itself: folding a
// header CRC must change the hash, distinct CRCs must not collide on the
// same base, and the derivation must be deterministic.
func TestFingerprintWithSlab(t *testing.T) {
	fp := fingerprint{nodes: 3, hash: 0x1234}
	a, b := fp.withSlab(1), fp.withSlab(2)
	if a.nodes != fp.nodes || b.nodes != fp.nodes {
		t.Fatal("withSlab changed the node count")
	}
	if a.hash == fp.hash || b.hash == fp.hash {
		t.Fatal("withSlab left the hash unchanged")
	}
	if a.hash == b.hash {
		t.Fatal("distinct slab CRCs collided")
	}
	if again := fp.withSlab(1); again != a {
		t.Fatal("withSlab is not deterministic")
	}
}
