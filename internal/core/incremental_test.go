package core

import (
	"testing"

	"sourcerank/internal/linalg"
	"sourcerank/internal/source"
	"sourcerank/internal/spam"
)

func TestRankFromMatchesColdStart(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	cold, err := Rank(sg, kappa, Config{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RankFrom(sg, kappa, cold.Scores, Config{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.L2Distance(cold.Scores, warm.Scores); d > 1e-9 {
		t.Errorf("warm start diverged by %g", d)
	}
	// Restarting from the answer should converge almost immediately.
	if warm.Stats.Iterations > 3 {
		t.Errorf("warm start from the fixed point took %d iterations", warm.Stats.Iterations)
	}
}

func TestRankFromAfterSmallChange(t *testing.T) {
	pg := corpus(t)
	sg := buildSG(t, pg)
	kappa := make([]float64, sg.NumSources())
	cold, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Inject a small attack and re-rank warm vs cold.
	attacked := pg.Clone()
	if _, err := spam.InjectIntraSource(attacked, 0, 10); err != nil {
		t.Fatal(err)
	}
	sg2, err := source.Build(attacked, source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := Rank(sg2, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := RankFrom(sg2, kappa, cold.Scores, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.L2Distance(cold2.Scores, warm2.Scores); d > 1e-7 {
		t.Errorf("warm result differs from cold by %g", d)
	}
	if warm2.Stats.Iterations > cold2.Stats.Iterations {
		t.Errorf("warm start (%d iters) slower than cold (%d)",
			warm2.Stats.Iterations, cold2.Stats.Iterations)
	}
}

func TestRankFromValidation(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	if _, err := RankFrom(nil, kappa, nil, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := RankFrom(sg, kappa, linalg.NewVector(2), Config{}); err == nil {
		t.Error("wrong prev length accepted")
	}
	if _, err := RankFrom(sg, []float64{0.5}, linalg.NewVector(sg.NumSources()), Config{}); err == nil {
		t.Error("short kappa accepted")
	}
}

func TestRankFromZeroPrevFallsBack(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	zero := linalg.NewVector(sg.NumSources())
	res, err := RankFrom(sg, kappa, zero, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Errorf("fallback did not converge: %+v", res.Stats)
	}
	cold, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.L2Distance(res.Scores, cold.Scores); d > 1e-7 {
		t.Errorf("fallback differs from cold by %g", d)
	}
}
