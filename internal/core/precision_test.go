package core

import (
	"math"
	"testing"

	"sourcerank/internal/gen"
	"sourcerank/internal/linalg"
	"sourcerank/internal/rankeval"
	"sourcerank/internal/source"
)

// fidelityFixture generates a realistic corpus (UK2002 preset at small
// scale, planted spam) and derives its source graph once for the
// float32-vs-float64 fidelity tests.
func fidelityFixture(t *testing.T) (*source.Graph, []int32) {
	t.Helper()
	ds, err := gen.GeneratePreset(gen.Preset("UK2002"), 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sg, ds.SpamSources
}

// TestFloat32PipelineFidelity is the end-to-end rank-fidelity gate for
// the float32 scoring path: the full κ-throttled SRSR pipeline run at
// float32 must reproduce the float64 ranking with Kendall τ ≥ 0.999 and
// top-100 overlap ≥ 0.99, must assign the identical κ vector (the
// proximity walk never runs at float32, so the throttle set cannot
// drift), and must not move the spam-demotion AUC materially.
func TestFloat32PipelineFidelity(t *testing.T) {
	sg, spam := fidelityFixture(t)
	run := func(p linalg.Precision) *PipelineResult {
		res, err := PipelineFromSourceGraph(sg, PipelineConfig{
			Config:    Config{Precision: p},
			SpamSeeds: spam,
			TopK:      sg.NumSources() / 37, // ≈2.7%
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Converged {
			t.Fatalf("%v solve did not converge: %+v", p, res.Stats)
		}
		return res
	}
	r64 := run(linalg.Float64)
	r32 := run(linalg.Float32)

	if r64.Precision != linalg.Float64 || r32.Precision != linalg.Float32 {
		t.Fatalf("precision provenance: f64 run %v, f32 run %v", r64.Precision, r32.Precision)
	}
	if len(r32.Kappa) != len(r64.Kappa) {
		t.Fatalf("kappa lengths differ: %d vs %d", len(r32.Kappa), len(r64.Kappa))
	}
	for i := range r64.Kappa {
		if r32.Kappa[i] != r64.Kappa[i] {
			t.Fatalf("kappa[%d] differs under float32: %v vs %v", i, r32.Kappa[i], r64.Kappa[i])
		}
	}

	tau, err := rankeval.KendallTau(r64.Scores, r32.Scores)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.999 {
		t.Errorf("Kendall τ between float64 and float32 SRSR = %.6f, want >= 0.999", tau)
	}
	overlap, err := rankeval.TopKOverlap(r64.Scores, r32.Scores, 100)
	if err != nil {
		t.Fatal(err)
	}
	if overlap < 0.99 {
		t.Errorf("top-100 overlap between float64 and float32 SRSR = %.4f, want >= 0.99", overlap)
	}

	// Spam demotion: AUC of the negated scores against the spam labels
	// (high AUC = spam ranked low). The float32 path must preserve it.
	auc64 := spamDemotionAUC(t, r64.Scores, spam)
	auc32 := spamDemotionAUC(t, r32.Scores, spam)
	if d := math.Abs(auc64 - auc32); d > 1e-3 {
		t.Errorf("spam-demotion AUC moved by %.2e under float32 (%.6f vs %.6f)", d, auc32, auc64)
	}
}

func spamDemotionAUC(t *testing.T, scores linalg.Vector, spam []int32) float64 {
	t.Helper()
	neg := make(linalg.Vector, len(scores))
	for i, s := range scores {
		neg[i] = -s
	}
	auc, err := rankeval.AUC(neg, spam)
	if err != nil {
		t.Fatal(err)
	}
	return auc
}

// TestFloat32BaselineFidelity runs the same gates on the un-throttled
// SourceRank baseline, covering the κ = 0 corner of the solve.
func TestFloat32BaselineFidelity(t *testing.T) {
	sg, _ := fidelityFixture(t)
	r64, err := BaselineSourceRank(sg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r32, err := BaselineSourceRank(sg, Config{Precision: linalg.Float32})
	if err != nil {
		t.Fatal(err)
	}
	tau, err := rankeval.KendallTau(r64.Scores, r32.Scores)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.999 {
		t.Errorf("baseline Kendall τ = %.6f, want >= 0.999", tau)
	}
	overlap, err := rankeval.TopKOverlap(r64.Scores, r32.Scores, 100)
	if err != nil {
		t.Fatal(err)
	}
	if overlap < 0.99 {
		t.Errorf("baseline top-100 overlap = %.4f, want >= 0.99", overlap)
	}
}

// TestFloat32JacobiSolverFidelity covers the Jacobi route of the float32
// option against its float64 counterpart.
func TestFloat32JacobiSolverFidelity(t *testing.T) {
	sg, _ := fidelityFixture(t)
	r64, err := Rank(sg, make([]float64, sg.NumSources()), Config{Solver: Jacobi})
	if err != nil {
		t.Fatal(err)
	}
	r32, err := Rank(sg, make([]float64, sg.NumSources()), Config{Solver: Jacobi, Precision: linalg.Float32})
	if err != nil {
		t.Fatal(err)
	}
	tau, err := rankeval.KendallTau(r64.Scores, r32.Scores)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.999 {
		t.Errorf("jacobi Kendall τ = %.6f, want >= 0.999", tau)
	}
}

// TestFloat32CheckpointRejected pins the incompatibility: checkpointed
// solves must observe float64 iterates, so Precision Float32 is an
// explicit error — both directly and through the pipeline — and never
// silently changes fingerprint semantics.
func TestFloat32CheckpointRejected(t *testing.T) {
	sg := buildSG(t, corpus(t))
	cfg := Config{Precision: linalg.Float32}
	ck := CheckpointConfig{Dir: t.TempDir()}
	if _, _, err := RankCheckpointed(sg, make([]float64, sg.NumSources()), cfg, ck); err == nil {
		t.Fatal("RankCheckpointed accepted Precision Float32")
	}
	_, err := PipelineFromSourceGraph(sg, PipelineConfig{
		Config:     cfg,
		SpamSeeds:  []int32{4, 5},
		TopK:       2,
		Checkpoint: &ck,
	})
	if err == nil {
		t.Fatal("checkpointed pipeline accepted Precision Float32")
	}
}

// TestCheckpointFingerprintGolden pins the checkpoint fingerprint bytes
// on fixed inputs: the float32 path must not perturb fingerprint
// derivation, or resume compatibility with pre-existing checkpoint
// directories would silently break. An intentional format change must
// update the constants (and bump the checkpoint magic).
func TestCheckpointFingerprintGolden(t *testing.T) {
	m, err := linalg.NewCSR(3, 3, []linalg.Entry{
		{Row: 0, Col: 1, Val: 0.5}, {Row: 0, Col: 2, Val: 0.5},
		{Row: 1, Col: 0, Val: 1}, {Row: 2, Col: 2, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := fingerprintOf(m, 0.85, nil)
	warm := fingerprintOf(m, 0.85, linalg.Vector{0.25, 0.25, 0.5})
	if want := uint64(0x4a2ae2d7003b4e8a); cold.hash != want || cold.nodes != 3 {
		t.Errorf("cold fingerprint = {nodes:%d hash:%#x}, golden {nodes:3 hash:%#x}", cold.nodes, cold.hash, want)
	}
	if want := uint64(0xf7284b5517582325); warm.hash != want || warm.nodes != 3 {
		t.Errorf("warm fingerprint = {nodes:%d hash:%#x}, golden {nodes:3 hash:%#x}", warm.nodes, warm.hash, want)
	}
}

// TestParsePrecision covers the flag-level parser both CLIs use.
func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in   string
		want linalg.Precision
		ok   bool
	}{
		{"", linalg.Float64, true},
		{"float64", linalg.Float64, true},
		{"f64", linalg.Float64, true},
		{"float32", linalg.Float32, true},
		{"f32", linalg.Float32, true},
		{"float16", 0, false},
	}
	for _, c := range cases {
		got, err := linalg.ParsePrecision(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParsePrecision(%q) = %v, %v", c.in, got, err)
		}
	}
}
