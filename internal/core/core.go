// Package core implements the paper's primary contribution:
// Spam-Resilient SourceRank (SRSR), a source-level random-walk ranking
// with influence throttling.
//
// The model composes three layers (paper §3):
//
//  1. a source view of the Web (internal/source groups pages by host),
//  2. source-consensus influence flow (edge strength counts the unique
//     pages of the origin source linking into the target source), and
//  3. influence throttling (every source must keep at least κ_i of its
//     transition mass on its own self-edge; internal/throttle).
//
// The SRSR vector σ solves σᵀ = α·σᵀ·T″ + (1-α)·cᵀ (paper Eq. 3), computed
// here with the parallel power method of internal/linalg at the paper's
// convergence threshold (L2 < 1e-9) and mixing parameter α = 0.85.
package core

import (
	"errors"
	"fmt"
	"path/filepath"

	"sourcerank/internal/linalg"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/rank"
	"sourcerank/internal/source"
	"sourcerank/internal/throttle"
)

// Solver selects the iteration scheme used for the stationary solve.
type Solver int

const (
	// Power iterates the damped chain directly (default).
	Power Solver = iota
	// Jacobi solves the equivalent linear system σ = α·T″ᵀσ + (1-α)c and
	// L1-normalizes, the paper's "convenient linear form".
	Jacobi
)

// Config configures a Spam-Resilient SourceRank computation. The zero
// value reproduces the paper's setup.
type Config struct {
	// Alpha is the mixing parameter α; 0 defaults to 0.85.
	Alpha float64
	// Tol is the L2 convergence threshold; 0 defaults to 1e-9.
	Tol float64
	// MaxIter caps solver iterations; 0 defaults to 1000.
	MaxIter int
	// Workers bounds SpMV parallelism; <= 0 selects GOMAXPROCS.
	Workers int
	// Solver selects Power (default) or Jacobi.
	Solver Solver
	// Weighting selects the source-edge derivation; the default is the
	// paper's Consensus. (Only used by entry points that build the
	// source graph themselves.)
	Weighting source.Weighting
	// X0 optionally warm-starts the stationary solve from a previous
	// score vector (e.g. the last published snapshot's σ). It must have
	// one entry per source; the solver converges to the same fixed
	// point from any start, only faster when X0 is close. Only the
	// Power solver warm-starts; Jacobi ignores X0.
	X0 linalg.Vector
	// CheckEvery computes the convergence residual only every k-th
	// iteration (see linalg.SolverOptions.CheckEvery); <= 1 checks
	// every iteration.
	CheckEvery int
	// Precision selects the arithmetic of the stationary solve. The
	// default, linalg.Float64, is the reference path; linalg.Float32 runs
	// the solve on the bandwidth-oriented float32 kernels (float32
	// storage, float64 accumulation, tolerances clamped to
	// linalg.Float32Tol) and widens the result. Only the stationary solve
	// honors this: the spam-proximity walk always runs in float64, so the
	// κ assignment — whose top-k boundary is rank-sensitive — is identical
	// under either precision. Incompatible with Checkpointing, which must
	// observe float64 iterates (RankCheckpointed rejects Float32).
	Precision linalg.Precision
	// SlabDir, when set, routes the stationary solve through the
	// out-of-core path: the throttled transpose is committed as a slab
	// file under SlabDir (at the precision selected by Precision) and the
	// solve consumes the memory-mapped file instead of the in-heap
	// arrays. Scores are bitwise identical to the in-memory solve at
	// every worker count. Checkpointed solves fold the slab's header CRC
	// into the resume fingerprint, so a checkpoint taken against one slab
	// backing never resumes against a swapped slab or the in-heap operand.
	SlabDir string
	// MaxResident, with SlabDir set, bounds the resident footprint of
	// the slab-backed operand during the solve: row stripes are streamed
	// with prefetch hints and released behind the iteration, so only the
	// dense iterate vectors (plus the row-pointer array) stay resident.
	// <= 0 maps the file without release-behind.
	MaxResident int64
}

func (c Config) rankOptions() rank.Options {
	return rank.Options{Alpha: c.Alpha, Tol: c.Tol, MaxIter: c.MaxIter, Workers: c.Workers,
		X0: sanitizeWarmStart(c.X0), CheckEvery: c.CheckEvery, Precision: c.Precision}
}

// sanitizeWarmStart clones and L1-normalizes a warm-start vector so the
// solve starts from a probability distribution. A nil or degenerate
// (zero/non-normalizable) vector yields nil, i.e. a cold start.
func sanitizeWarmStart(prev linalg.Vector) linalg.Vector {
	if prev == nil {
		return nil
	}
	x0 := prev.Clone()
	if !x0.Normalize1() {
		return nil
	}
	return x0
}

func (c Config) alpha() float64 {
	if c.Alpha == 0 {
		return 0.85
	}
	return c.Alpha
}

// Result is the outcome of an SRSR computation.
type Result struct {
	// Scores is the SRSR vector σ, a probability distribution over
	// sources.
	Scores linalg.Vector
	// Kappa is the throttling vector used.
	Kappa []float64
	// Throttled is the influence-throttled transition matrix T″.
	Throttled *linalg.CSR
	// Stats reports solver convergence.
	Stats linalg.IterStats
	// Precision records which arithmetic produced Scores (provenance for
	// published score sets; Scores itself is always float64).
	Precision linalg.Precision
}

// throttledTranspose materializes the transpose of the throttled matrix
// exactly once per distinct matrix: when throttle.Apply's identity fast
// path handed back sg.T itself, the transpose cached on the source graph
// is reused (materialized on first demand, shared by every later solve);
// otherwise the throttled matrix is transposed with the parallel kernel.
func throttledTranspose(sg *source.Graph, tpp *linalg.CSR, workers int) *linalg.CSR {
	if tpp == sg.T {
		return sg.TransposedT(workers)
	}
	return tpp.TransposeParallel(workers)
}

// Rank computes Spam-Resilient SourceRank over a prepared source graph
// with the given throttling vector. Pass a zero vector for κ to obtain
// the un-throttled (but still consensus-weighted, self-edged) model.
func Rank(sg *source.Graph, kappa []float64, cfg Config) (*Result, error) {
	if sg == nil || sg.NumSources() == 0 {
		return nil, errors.New("core: empty source graph")
	}
	tpp, err := throttle.Apply(sg.T, kappa)
	if err != nil {
		return nil, fmt.Errorf("core: applying throttle: %w", err)
	}
	tppT := throttledTranspose(sg, tpp, cfg.Workers)
	res := &Result{Kappa: append([]float64(nil), kappa...), Throttled: tpp, Precision: cfg.Precision}
	op, err := cfg.solveOperand(tppT)
	if err != nil {
		return nil, err
	}
	defer op.close()
	switch cfg.Solver {
	case Jacobi:
		n := tpp.Rows
		b := linalg.NewUniformVector(n)
		b.Scale(1 - cfg.alpha())
		sopt := linalg.SolverOptions{
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Workers: cfg.Workers, CheckEvery: cfg.CheckEvery,
		}
		var scores linalg.Vector
		var stats linalg.IterStats
		if op.m32 != nil {
			scores, stats, err = linalg.JacobiAffineT32(op.m32, cfg.alpha(), b, sopt)
		} else {
			scores, stats, err = linalg.JacobiAffineT(op.m, cfg.alpha(), b, sopt)
		}
		if err != nil {
			return nil, err
		}
		scores.Normalize1()
		res.Scores, res.Stats = scores, stats
	default:
		var r *rank.Result
		if op.m32 != nil {
			// The float32 operand already carries NewCSR32's bits (the
			// slab writer narrows identically), so iterating it directly
			// equals StationaryT's Float32 route without the narrowing
			// copy.
			r, err = rank.StationaryT32(op.m32, cfg.rankOptions())
		} else {
			r, err = rank.StationaryT(op.m, cfg.rankOptions())
		}
		if err != nil {
			return nil, err
		}
		res.Scores, res.Stats = r.Scores, r.Stats
	}
	return res, nil
}

// solveOperand is the backing-erasure seam between Rank and the solvers:
// exactly one of m/m32 is set, in heap or slab-mapped form.
type solveOperand struct {
	m   *linalg.CSR
	m32 *linalg.CSR32
	// slabPath is the committed slab file when the operand is slab-backed
	// ("" for in-heap operands); RankCheckpointed fingerprints its header.
	slabPath string
	close    func()
}

// solveOperand resolves the stationary-solve operand for tppT under the
// configured precision and backing. With SlabDir unset this is the
// in-memory matrix (narrowed for Float32, matching the historical path
// bit for bit). With SlabDir set, tppT is committed as a slab file and
// reopened memory-mapped; the heap copy becomes garbage once the caller
// drops tppT, leaving the solve to stream the file.
func (c Config) solveOperand(tppT *linalg.CSR) (solveOperand, error) {
	f32 := c.Precision == linalg.Float32
	if c.SlabDir == "" {
		if f32 {
			// Power solves narrow inside rank.StationaryT; narrowing here
			// for both solvers keeps one seam. Bits are identical either
			// way (NewCSR32 in both places).
			return solveOperand{m32: linalg.NewCSR32(tppT), close: func() {}}, nil
		}
		return solveOperand{m: tppT, close: func() {}}, nil
	}
	path := filepath.Join(c.SlabDir, "throttled_t.slab")
	opt := linalg.SlabOpenOptions{MaxResident: c.MaxResident}
	if f32 {
		if err := linalg.WriteSlabCSR(nil, path, tppT, linalg.SlabFloat32); err != nil {
			return solveOperand{}, fmt.Errorf("core: writing slab: %w", err)
		}
		s, err := linalg.OpenSlabCSR32(path, opt)
		if err != nil {
			return solveOperand{}, fmt.Errorf("core: opening slab: %w", err)
		}
		return solveOperand{m32: s.Matrix(), slabPath: path, close: func() { s.Close() }}, nil
	}
	if err := linalg.WriteSlabCSR(nil, path, tppT, linalg.SlabFloat64); err != nil {
		return solveOperand{}, fmt.Errorf("core: writing slab: %w", err)
	}
	s, err := linalg.OpenSlabCSR(path, opt)
	if err != nil {
		return solveOperand{}, fmt.Errorf("core: opening slab: %w", err)
	}
	return solveOperand{m: s.Matrix(), slabPath: path, close: func() { s.Close() }}, nil
}

// BaselineSourceRank computes the un-throttled SourceRank over the same
// source graph: a PageRank-style walk on T with no throttling. This is
// the paper's Figure 5 baseline.
func BaselineSourceRank(sg *source.Graph, cfg Config) (*Result, error) {
	return Rank(sg, make([]float64, sg.NumSources()), cfg)
}

// PipelineConfig configures the end-to-end computation from a page graph:
// source-graph construction, spam-proximity throttling (paper §5), and
// the SRSR solve.
type PipelineConfig struct {
	Config
	// SpamSeeds lists the source IDs pre-labeled as spam. Required:
	// spam-proximity needs a seed set.
	SpamSeeds []int32
	// TopK is the number of highest-proximity sources to throttle fully
	// (κ = 1); the paper uses 20,000 on WB2001.
	TopK int
	// Beta is the proximity walk's mixing factor; 0 defaults to 0.85.
	Beta float64
	// Graded switches the κ assignment from the paper's binary top-k
	// heuristic to the graded extension, with values below the top-k
	// capped at GradedMax.
	Graded    bool
	GradedMax float64
	// ProximityX0 optionally warm-starts the spam-proximity walk from a
	// previous proximity vector, mirroring Config.X0 for the stationary
	// solve. Degenerate vectors fall back to a cold start.
	ProximityX0 linalg.Vector
	// Checkpoint, if set, makes the final SRSR solve resumable: the
	// iterate is persisted every Checkpoint.Every iterations and a crash
	// resumes from the newest valid checkpoint (see RankCheckpointed).
	// The spam-proximity solve is not checkpointed; it is cheap relative
	// to the stationary solve. Requires the Power solver.
	Checkpoint *CheckpointConfig
}

// PipelineResult extends Result with the intermediate artifacts of the
// full pipeline.
type PipelineResult struct {
	Result
	SourceGraph    *source.Graph
	Proximity      linalg.Vector
	ProximityStats linalg.IterStats
	// Checkpoint reports resume/persist activity when
	// PipelineConfig.Checkpoint was set.
	Checkpoint CheckpointInfo
}

// Pipeline runs the full Spam-Resilient SourceRank pipeline on a page
// graph: build the consensus-weighted source graph, propagate spam
// proximity from the seed set, assign κ, and solve for σ.
func Pipeline(pg *pagegraph.Graph, cfg PipelineConfig) (*PipelineResult, error) {
	sg, err := source.Build(pg, source.Options{Weighting: cfg.Weighting, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: building source graph: %w", err)
	}
	return PipelineFromSourceGraph(sg, cfg)
}

// PipelineFromSourceGraph runs the proximity + throttle + solve stages on
// an already-built source graph, which lets experiments reuse one source
// graph across many throttle settings.
func PipelineFromSourceGraph(sg *source.Graph, cfg PipelineConfig) (*PipelineResult, error) {
	prox, pstats, err := throttle.SpamProximity(sg.Structure(), cfg.SpamSeeds, throttle.ProximityOptions{
		Beta: cfg.Beta, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Workers: cfg.Workers,
		X0: sanitizeWarmStart(cfg.ProximityX0),
	})
	if err != nil {
		return nil, fmt.Errorf("core: spam proximity: %w", err)
	}
	var kappa []float64
	if cfg.Graded {
		kappa = throttle.Graded(prox, cfg.TopK, cfg.GradedMax)
	} else {
		kappa = throttle.TopK(prox, cfg.TopK)
	}
	var res *Result
	var ckInfo CheckpointInfo
	if cfg.Checkpoint != nil {
		res, ckInfo, err = RankCheckpointed(sg, kappa, cfg.Config, *cfg.Checkpoint)
	} else {
		res, err = Rank(sg, kappa, cfg.Config)
	}
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Result:         *res,
		SourceGraph:    sg,
		Proximity:      prox,
		ProximityStats: pstats,
		Checkpoint:     ckInfo,
	}, nil
}
