package core

import (
	"testing"

	"sourcerank/internal/linalg"
)

// TestPipelineMaterializesOneTranspose asserts the tentpole reuse
// guarantee: one full pipeline run (source build, spam proximity, SRSR
// solve) materializes at most one transpose per distinct matrix — in
// practice exactly one, of the throttled T″. The proximity walk builds
// its Pᵀ operand directly from the forward structure and the solvers
// accept pre-transposed operands, so no other transpose exists.
func TestPipelineMaterializesOneTranspose(t *testing.T) {
	pg := corpus(t)
	before := linalg.TransposeMaterializations()
	res, err := Pipeline(pg, PipelineConfig{
		SpamSeeds: []int32{4},
		TopK:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatalf("not converged: %+v", res.Stats)
	}
	if d := linalg.TransposeMaterializations() - before; d > 1 {
		t.Errorf("pipeline materialized %d transposes, want at most 1", d)
	}
}

// TestBaselineRunsShareCachedTranspose asserts the zero-κ fast path:
// throttle.Apply returns T itself, so the solve reuses the transpose
// cached on the source graph and a second solve on the same graph
// materializes nothing new.
func TestBaselineRunsShareCachedTranspose(t *testing.T) {
	sg := buildSG(t, corpus(t))
	before := linalg.TransposeMaterializations()
	r1, err := BaselineSourceRank(sg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BaselineSourceRank(sg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.TransposeMaterializations() - before; d != 1 {
		t.Errorf("two baseline solves materialized %d transposes, want 1 (shared)", d)
	}
	if r1.Throttled != sg.T || r2.Throttled != sg.T {
		t.Error("zero-κ throttle should return T itself (identity fast path)")
	}
	for i := range r1.Scores {
		if r1.Scores[i] != r2.Scores[i] {
			t.Fatalf("baseline solves disagree at %d", i)
		}
	}
}

// TestThrottledRunMaterializesFreshTranspose checks the complement: a
// nonzero κ produces a distinct throttled matrix, which costs exactly one
// new transpose, and the source graph's cached Tᵀ is untouched.
func TestThrottledRunMaterializesFreshTranspose(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	kappa[4], kappa[5] = 1, 1
	before := linalg.TransposeMaterializations()
	res, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttled == sg.T {
		t.Fatal("nonzero κ should produce a distinct throttled matrix")
	}
	if d := linalg.TransposeMaterializations() - before; d != 1 {
		t.Errorf("throttled solve materialized %d transposes, want 1", d)
	}
}
