package core

import (
	"math"
	"testing"

	"sourcerank/internal/linalg"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/source"
)

// corpus builds a page graph with a legitimate cluster (sources 0..3
// linking forward in a chain plus cross links) and a spam cluster
// (sources 4,5 forming a link exchange that also targets source 3's
// pages... no: targets source 0). Page layout: 2 pages per source.
func corpus(t *testing.T) *pagegraph.Graph {
	t.Helper()
	g := pagegraph.New()
	pages := make([][]pagegraph.PageID, 6)
	for s := 0; s < 6; s++ {
		id := g.AddSource("s" + string(rune('a'+s)) + ".com")
		pages[s] = []pagegraph.PageID{g.AddPage(id), g.AddPage(id)}
	}
	link := func(a, b pagegraph.SourceID) {
		g.AddLink(pages[a][0], pages[b][0])
		g.AddLink(pages[a][1], pages[b][1])
	}
	// Legitimate chain with back edges.
	link(0, 1)
	link(1, 2)
	link(2, 3)
	link(3, 0)
	link(1, 0)
	// Spam exchange: 4 <-> 5 plus both target source 0.
	link(4, 5)
	link(5, 4)
	link(4, 0)
	link(5, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func buildSG(t *testing.T, g *pagegraph.Graph) *source.Graph {
	t.Helper()
	sg, err := source.Build(g, source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestRankZeroKappaIsDistribution(t *testing.T) {
	sg := buildSG(t, corpus(t))
	res, err := Rank(sg, make([]float64, sg.NumSources()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatalf("not converged: %+v", res.Stats)
	}
	if math.Abs(res.Scores.Sum()-1) > 1e-8 {
		t.Errorf("sum = %v, want 1", res.Scores.Sum())
	}
	for i, s := range res.Scores {
		if s < 0 {
			t.Errorf("negative score at %d: %v", i, s)
		}
	}
}

func TestRankKappaValidation(t *testing.T) {
	sg := buildSG(t, corpus(t))
	if _, err := Rank(sg, []float64{0.5}, Config{}); err == nil {
		t.Error("short kappa accepted")
	}
	if _, err := Rank(nil, nil, Config{}); err == nil {
		t.Error("nil source graph accepted")
	}
}

func TestThrottlingSpamReducesItsInfluence(t *testing.T) {
	sg := buildSG(t, corpus(t))
	zero := make([]float64, sg.NumSources())
	base, err := Rank(sg, zero, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fully throttle the spam exchange (sources 4, 5).
	kappa := make([]float64, sg.NumSources())
	kappa[4], kappa[5] = 1, 1
	thr, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Source 0 was the spam target: its relative score must drop once the
	// spam sources stop exporting influence.
	if thr.Scores[0] >= base.Scores[0] {
		t.Errorf("spam target score did not drop: base %v, throttled %v",
			base.Scores[0], thr.Scores[0])
	}
}

func TestJacobiMatchesPower(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := make([]float64, sg.NumSources())
	kappa[4] = 0.7
	pw, err := Rank(sg, kappa, Config{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	jc, err := Rank(sg, kappa, Config{Tol: 1e-13, Solver: Jacobi})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.L2Distance(pw.Scores, jc.Scores); d > 1e-8 {
		t.Errorf("power vs jacobi differ by %g", d)
	}
}

func TestBaselineSourceRank(t *testing.T) {
	sg := buildSG(t, corpus(t))
	res, err := BaselineSourceRank(sg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Kappa {
		if k != 0 {
			t.Fatal("baseline applied throttling")
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	g := corpus(t)
	res, err := Pipeline(g, PipelineConfig{
		SpamSeeds: []int32{4}, // only one of the two spam sources labeled
		TopK:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged || !res.ProximityStats.Converged {
		t.Fatalf("solver(s) did not converge: %+v %+v", res.Stats, res.ProximityStats)
	}
	// The proximity walk must throttle both spam sources: 5 links to the
	// labeled seed 4, so it is "close" to spam.
	if res.Kappa[4] != 1 {
		t.Errorf("labeled spam source not throttled: kappa = %v", res.Kappa)
	}
	if res.Kappa[5] != 1 {
		t.Errorf("spam neighbor not throttled: kappa = %v", res.Kappa)
	}
	if math.Abs(res.Scores.Sum()-1) > 1e-8 {
		t.Errorf("scores sum to %v", res.Scores.Sum())
	}
}

func TestPipelineGraded(t *testing.T) {
	g := corpus(t)
	res, err := Pipeline(g, PipelineConfig{
		SpamSeeds: []int32{4},
		TopK:      1,
		Graded:    true,
		GradedMax: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	count1 := 0
	for _, k := range res.Kappa {
		if k == 1 {
			count1++
		}
		if k < 0 || k > 1 {
			t.Errorf("kappa out of range: %v", k)
		}
	}
	if count1 != 1 {
		t.Errorf("graded top-1 throttled %d sources fully", count1)
	}
}

func TestPipelineRequiresSeeds(t *testing.T) {
	if _, err := Pipeline(corpus(t), PipelineConfig{}); err == nil {
		t.Error("pipeline without seeds accepted")
	}
}

func TestFullThrottleCapsOneTimeGain(t *testing.T) {
	// Paper §4.1: for a fully-throttled source (κ=1) tuning the self-edge
	// gives no gain at all; its SRSR equals the teleport floor because no
	// one else links to it.
	g := pagegraph.New()
	isolated := g.AddSource("isolated.com")
	other := g.AddSource("other.com")
	p := g.AddPage(isolated)
	q := g.AddPage(other)
	g.AddLink(p, p) // pure self-link
	g.AddLink(q, q)
	sg := buildSG(t, g)
	res, err := Rank(sg, []float64{1, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Both sources are symmetric self-loops: scores must be equal.
	if math.Abs(res.Scores[0]-res.Scores[1]) > 1e-9 {
		t.Errorf("symmetric fully-throttled sources differ: %v", res.Scores)
	}
}
