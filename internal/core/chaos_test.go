package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sourcerank/internal/faultfs"
)

// TestChaosKillResumeConverges is the deterministic chaos harness of the
// resilience layer: the checkpointed solve is killed by an injected
// crash after a random number of written bytes — landing at arbitrary
// iterations and arbitrary offsets inside a checkpoint commit — then
// restarted on a healed disk, over and over until it completes. The
// final vector must match an uninterrupted solve to 1e-12 (the iterate
// sequence is in fact reproduced bit for bit), and every restart must
// tolerate whatever torn temp files and partial state the previous
// death left behind.
func TestChaosKillResumeConverges(t *testing.T) {
	sg := buildSG(t, corpus(t))
	kappa := testKappa(sg.NumSources())
	ref, err := Rank(sg, kappa, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Stats.Converged {
		t.Fatal("reference solve did not converge")
	}

	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			ffs := faultfs.New(nil)
			ck := CheckpointConfig{Dir: dir, Every: 5, FS: ffs}

			var res *Result
			resumed := false
			const maxRestarts = 60
			attempt := 0
			for ; attempt < maxRestarts; attempt++ {
				// Each attempt models a fresh process on a healed disk
				// that will die again after a random write budget; late
				// attempts run fault-free so the loop always terminates.
				if attempt < 40 {
					// Budgets stay below one run's total checkpoint bytes,
					// so fault-armed attempts always die mid-solve.
					ffs.SetWriteBudget(int64(1 + rng.Intn(600)))
				} else {
					ffs.Heal()
				}
				r, info, err := RankCheckpointed(sg, kappa, Config{}, ck)
				if err != nil {
					if !errors.Is(err, faultfs.ErrCrash) {
						t.Fatalf("attempt %d: non-crash failure: %v", attempt, err)
					}
					continue
				}
				if info.ResumedFrom > 0 {
					resumed = true
				}
				res = r
				break
			}
			if res == nil {
				t.Fatalf("solve never completed in %d restarts", maxRestarts)
			}
			if ffs.Crashes() == 0 {
				t.Fatal("no crash was ever injected; the harness tested nothing")
			}
			if !resumed {
				t.Fatal("final run never resumed from a checkpoint")
			}
			if !res.Stats.Converged {
				t.Fatal("chaos run did not converge")
			}
			var maxDiff float64
			for i := range ref.Scores {
				if d := math.Abs(res.Scores[i] - ref.Scores[i]); d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff > 1e-12 {
				t.Fatalf("kill/resume result diverged: max |Δ| = %.3e > 1e-12", maxDiff)
			}
			t.Logf("restarts=%d crashes=%d max|Δ|=%.1e", attempt, ffs.Crashes(), maxDiff)
		})
	}
}
