package stream

import (
	"errors"
	"fmt"
	"slices"

	"sourcerank/internal/graph"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/source"
)

// ErrStaleSeq reports a batch whose sequence number is not past the
// ingestor's high-water mark — a replayed or duplicate batch.
var ErrStaleSeq = errors.New("stream: stale batch sequence")

// ErrRejected wraps every batch validation failure. A rejected batch
// leaves the ingestor's state untouched.
var ErrRejected = errors.New("stream: batch rejected")

// IngestStats counts applied work, for observability and the bench
// harness's churn accounting.
type IngestStats struct {
	Batches       int
	Deltas        int
	SourcesAdded  int
	PagesAdded    int
	EdgesAdded    int
	EdgesRemoved  int
	Touches       int
	RowsRewritten int
}

// Ingestor applies delta batches to a page graph and mirrors every
// mutation into the incremental source-graph maintainer, so only the
// consensus rows a batch actually touches re-aggregate. Batches are
// atomic: the whole batch is validated against the current state (plus
// the batch's own earlier deltas) before anything is applied, and any
// invalid delta rejects the batch with both graphs unchanged.
//
// Ingestor is not safe for concurrent use; Pipeline serializes access.
type Ingestor struct {
	pg      *pagegraph.Graph
	inc     *source.Incremental
	lastSeq uint64
	stats   IngestStats
}

// NewIngestor wraps pg, building the initial source-consensus state with
// a full aggregation. pg is retained and mutated by Apply; the caller
// must route every future mutation through the ingestor.
func NewIngestor(pg *pagegraph.Graph, opt source.Options) (*Ingestor, error) {
	inc, err := source.NewIncremental(pg, opt)
	if err != nil {
		return nil, err
	}
	return &Ingestor{pg: pg, inc: inc}, nil
}

// LastSeq is the highest applied batch sequence number (0 before any).
func (in *Ingestor) LastSeq() uint64 { return in.lastSeq }

// Stats returns cumulative ingest counters.
func (in *Ingestor) Stats() IngestStats { return in.stats }

// PageGraph exposes the mutated page graph (read-only for callers; the
// equivalence tests rebuild cold state from it).
func (in *Ingestor) PageGraph() *pagegraph.Graph { return in.pg }

// Emit returns the current source graph, recomputing only rows dirtied
// since the last emit (see source.Incremental.Emit).
func (in *Ingestor) Emit() *source.Graph { return in.inc.Emit() }

// Structure returns the incrementally maintained source topology.
func (in *Ingestor) Structure() graph.Topology { return in.inc.Structure() }

// StructureVersion counts sparsity-changing mutations of the source
// topology (see source.Incremental.StructureVersion).
func (in *Ingestor) StructureVersion() uint64 { return in.inc.StructureVersion() }

// CompactStructure folds accumulated structure patches once they exceed
// maxPatched rows; reports whether it compacted.
func (in *Ingestor) CompactStructure(maxPatched int) bool {
	return in.inc.CompactStructure(maxPatched)
}

// ForEachPendingStructureRow exposes the incremental maintainer's
// pending-row iterator (see source.Incremental.ForEachPendingStructureRow).
// Must be called before Emit, which consumes the pending set.
func (in *Ingestor) ForEachPendingStructureRow(fn func(r int32, old, next []int32)) {
	in.inc.ForEachPendingStructureRow(fn)
}

// staging is the validated shadow state of one batch: new sources and
// pages it introduces, plus copy-on-write out-link rows for every page
// whose links it edits. Nothing in it aliases mutable graph state, so
// discarding it on a validation error discards the batch.
type staging struct {
	baseSources int
	basePages   int
	newSources  []string
	newPages    []pagegraph.SourceID // owning source per staged page
	rows        map[pagegraph.PageID][]pagegraph.PageID
	rowOrder    []pagegraph.PageID // staging order of rows, for deterministic commit
	touches     int
}

func (st *staging) srcOK(s pagegraph.SourceID) bool {
	return s >= 0 && int(s) < st.baseSources+len(st.newSources)
}

func (st *staging) pageOK(p pagegraph.PageID) bool {
	return p >= 0 && int(p) < st.basePages+len(st.newPages)
}

// row returns the staged copy-on-write out-link row for p, creating it
// from the live graph (or empty, for pages the batch itself adds) on
// first touch.
func (st *staging) row(pg *pagegraph.Graph, p pagegraph.PageID) []pagegraph.PageID {
	if r, ok := st.rows[p]; ok {
		return r
	}
	var r []pagegraph.PageID
	if int(p) < st.basePages {
		r = slices.Clone(pg.OutLinks(p))
	}
	st.rows[p] = r
	st.rowOrder = append(st.rowOrder, p)
	return r
}

// stage validates b against the ingestor's current state and returns the
// batch's staged effects. The ingestor is not modified; every error
// wraps ErrRejected (or ErrStaleSeq for sequence regressions).
func (in *Ingestor) stage(b Batch) (*staging, error) {
	if b.Seq <= in.lastSeq {
		return nil, fmt.Errorf("%w: batch seq %d, already applied through %d", ErrStaleSeq, b.Seq, in.lastSeq)
	}
	st := &staging{
		baseSources: in.pg.NumSources(),
		basePages:   in.pg.NumPages(),
		rows:        make(map[pagegraph.PageID][]pagegraph.PageID),
	}
	for i, d := range b.Deltas {
		switch d.Op {
		case OpAddSource:
			st.newSources = append(st.newSources, d.Label)
		case OpAddPage:
			if !st.srcOK(d.Source) {
				return nil, fmt.Errorf("%w: delta %d: add-page to unknown source %d", ErrRejected, i, d.Source)
			}
			st.newPages = append(st.newPages, d.Source)
		case OpAddEdge:
			if !st.pageOK(d.From) || !st.pageOK(d.To) {
				return nil, fmt.Errorf("%w: delta %d: add-edge %d->%d references unknown page", ErrRejected, i, d.From, d.To)
			}
			st.rows[d.From] = append(st.row(in.pg, d.From), d.To)
		case OpRemoveEdge:
			if !st.pageOK(d.From) || !st.pageOK(d.To) {
				return nil, fmt.Errorf("%w: delta %d: remove-edge %d->%d references unknown page", ErrRejected, i, d.From, d.To)
			}
			r := st.row(in.pg, d.From)
			k := lastIndex(r, d.To)
			if k < 0 {
				return nil, fmt.Errorf("%w: delta %d: remove-edge %d->%d not present", ErrRejected, i, d.From, d.To)
			}
			st.rows[d.From] = slices.Delete(r, k, k+1)
		case OpTouchPage:
			if !st.pageOK(d.Page) {
				return nil, fmt.Errorf("%w: delta %d: touch of unknown page %d", ErrRejected, i, d.Page)
			}
			st.touches++
		default:
			return nil, fmt.Errorf("%w: delta %d: unknown op %d", ErrRejected, i, d.Op)
		}
	}
	return st, nil
}

// commit applies a previously validated staging to both graphs. It
// cannot fail: validation proved every id, and the incremental
// maintainer panics (bookkeeping corruption) rather than erroring.
func (in *Ingestor) commit(b Batch, st *staging) {
	for _, label := range st.newSources {
		pgID := in.pg.AddSource(label)
		incID := in.inc.AddSource(label)
		if pgID != incID {
			panic(fmt.Sprintf("stream: source id skew: pagegraph %d vs incremental %d", pgID, incID))
		}
	}
	for _, s := range st.newPages {
		in.pg.AddPage(s)
		in.inc.AddPage(s)
	}
	// Ascending page order keeps commits deterministic regardless of
	// delta interleaving within the batch.
	slices.Sort(st.rowOrder)
	for _, p := range st.rowOrder {
		row := st.rows[p]
		before := in.targetSources(in.pg.OutLinks(p))
		if err := in.pg.SetOutLinks(p, row); err != nil {
			panic(fmt.Sprintf("stream: committing validated row %d: %v", p, err))
		}
		after := in.targetSources(row)
		removed, added := diffSorted(before, after)
		in.inc.UpdatePage(in.pg.SourceOf(p), removed, added)
		in.stats.RowsRewritten++
	}
	in.lastSeq = b.Seq
	in.stats.Batches++
	in.stats.Deltas += len(b.Deltas)
	in.stats.SourcesAdded += len(st.newSources)
	in.stats.PagesAdded += len(st.newPages)
	in.stats.Touches += st.touches
	for _, d := range b.Deltas {
		switch d.Op {
		case OpAddEdge:
			in.stats.EdgesAdded++
		case OpRemoveEdge:
			in.stats.EdgesRemoved++
		}
	}
}

// Apply validates b atomically and, if every delta is valid, commits it.
// On error the ingestor is unchanged: unknown ids, removing an absent
// edge, an unknown op, or a non-advancing sequence number all reject the
// whole batch.
func (in *Ingestor) Apply(b Batch) error {
	st, err := in.stage(b)
	if err != nil {
		return err
	}
	in.commit(b, st)
	return nil
}

// targetSources maps a page's out-links to the sorted, deduplicated set
// of target sources — the unit the consensus aggregation counts (paper
// §3: one page contributes each target source at most once).
func (in *Ingestor) targetSources(links []pagegraph.PageID) []pagegraph.SourceID {
	if len(links) == 0 {
		return nil
	}
	out := make([]pagegraph.SourceID, len(links))
	for i, l := range links {
		out[i] = in.pg.SourceOf(l)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// diffSorted returns the elements only in before (removed) and only in
// after (added); both inputs are sorted and deduplicated.
func diffSorted(before, after []pagegraph.SourceID) (removed, added []pagegraph.SourceID) {
	i, j := 0, 0
	for i < len(before) && j < len(after) {
		switch {
		case before[i] < after[j]:
			removed = append(removed, before[i])
			i++
		case before[i] > after[j]:
			added = append(added, after[j])
			j++
		default:
			i++
			j++
		}
	}
	removed = append(removed, before[i:]...)
	added = append(added, after[j:]...)
	return removed, added
}

func lastIndex(s []pagegraph.PageID, v pagegraph.PageID) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == v {
			return i
		}
	}
	return -1
}
