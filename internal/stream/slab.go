package stream

import (
	"fmt"
	"io"
	"path/filepath"
	"slices"
	"strings"

	"sourcerank/internal/durable"
	"sourcerank/internal/graph"
	"sourcerank/internal/linalg"
)

// The slab-backed refresh keeps the shared PageRank/TrustRank transition
// operand Mᵀ on disk as slab generations instead of an in-heap CSR. Each
// topology change commits transition_t.gen<version>.slab by recomputing
// only the dirty predecessor rows — the Mᵀ rows reachable from any
// source row whose successor set changed — and copying every clean row's
// bytes straight from the previous generation's mapping, releasing
// pages behind the copy. The committed file is byte-identical to
// linalg.WriteSlabCSR(rank.TransitionT(structure)): dirty rows are
// refilled by the same ascending-predecessor counting pass TransitionT
// uses, and a clean row's content provably cannot have changed (every
// predecessor that rewired or re-weighted marks all its old and new
// successor rows dirty). The solves then stream the mapped file under
// the residency budget, bitwise identical to the in-heap solve.

// slabGenPrefix names generation files inside Options.SlabDir.
const (
	slabGenPrefix = "transition_t.gen"
	slabGenSuffix = ".slab"
)

// slabCopyWindow is the clean-row copy granularity in matrix entries:
// the rewrite copies at most this many entries of the old generation
// before releasing their pages, bounding the copy's resident footprint
// independently of generation size.
const slabCopyWindow = 1 << 20

// slabRefresher owns the on-disk generation chain of Mᵀ.
type slabRefresher struct {
	dir        string
	fsys       durable.FS
	maxRes     int64
	bufEntries int

	sm   *linalg.SlabCSR // mapped current generation; nil before the first build
	path string
	rows int    // row count of the current generation
	ver  uint64 // structure version the current generation reflects

	dirty map[int32]struct{} // Mᵀ rows invalidated against the current generation
}

func newSlabRefresher(opt Options) *slabRefresher {
	buf := opt.SlabPatchEntries
	if buf <= 0 {
		buf = 1 << 20
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = durable.OS{}
	}
	return &slabRefresher{
		dir: opt.SlabDir, fsys: fsys, maxRes: opt.MaxResident, bufEntries: buf,
		dirty: make(map[int32]struct{}),
	}
}

// pruneStale removes generation files left behind by a crashed
// predecessor; the refresher always rebuilds its first generation from
// live state, so any surviving file is garbage.
func (sr *slabRefresher) pruneStale() {
	entries, err := sr.fsys.ReadDir(sr.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, slabGenPrefix) && strings.HasSuffix(name, slabGenSuffix) {
			_ = sr.fsys.Remove(filepath.Join(sr.dir, name))
		}
	}
}

// invalidate marks the Mᵀ rows fed by one changed source row: the row's
// old successors (they may lose this predecessor or see its weight
// change) and its next successors (they gain it or see a new weight).
func (sr *slabRefresher) invalidate(old, next []int32) {
	for _, v := range old {
		sr.dirty[v] = struct{}{}
	}
	for _, v := range next {
		sr.dirty[v] = struct{}{}
	}
}

// close unmaps the current generation (the file stays on disk until the
// next generation supersedes it or pruneStale reclaims it).
func (sr *slabRefresher) close() error {
	if sr.sm == nil {
		return nil
	}
	sm := sr.sm
	sr.sm = nil
	return sm.Close()
}

// ensure returns the mapped operand for structure version sv, rewriting
// a fresh generation first when the topology moved past the current one.
// patched and copied report the rewrite's row accounting (both zero when
// the generation was already current).
func (sr *slabRefresher) ensure(topo graph.Topology, sv uint64) (m *linalg.CSR, patched, copied int, err error) {
	if sr.sm != nil && sr.ver == sv {
		return sr.sm.Matrix(), 0, 0, nil
	}
	path := filepath.Join(sr.dir, fmt.Sprintf("%s%d%s", slabGenPrefix, sv, slabGenSuffix))
	patched, copied, err = sr.writeGeneration(topo, path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("stream: writing transition slab: %w", err)
	}
	sm, err := linalg.OpenSlabCSR(path, linalg.SlabOpenOptions{MaxResident: sr.maxRes})
	if err != nil {
		return nil, 0, 0, fmt.Errorf("stream: opening transition slab: %w", err)
	}
	if sr.sm != nil {
		_ = sr.sm.Close()
		_ = sr.fsys.Remove(sr.path)
	}
	sr.sm, sr.path, sr.rows, sr.ver = sm, path, topo.NumNodes(), sv
	sr.dirty = make(map[int32]struct{})
	return sm.Matrix(), patched, copied, nil
}

// writeGeneration commits the next generation of Mᵀ at path. Dirty rows
// are recomputed from topo in ascending chunks bounded by bufEntries;
// clean rows stream byte-for-byte from the previous generation.
func (sr *slabRefresher) writeGeneration(topo graph.Topology, path string) (patched, copied int, err error) {
	n := topo.NumNodes()
	oldRows := 0
	var old *linalg.CSR
	if sr.sm != nil {
		old, oldRows = sr.sm.Matrix(), sr.rows
	}

	// Dirty destination rows, ascending: every invalidated row plus every
	// row beyond the previous generation (sources added since).
	dirtyList := make([]int32, 0, len(sr.dirty)+n-oldRows)
	for v := range sr.dirty {
		if int(v) < oldRows {
			dirtyList = append(dirtyList, v)
		}
	}
	for v := oldRows; v < n; v++ {
		dirtyList = append(dirtyList, int32(v))
	}
	slices.Sort(dirtyList)
	dirtyList = slices.Compact(dirtyList)
	patched, copied = len(dirtyList), n-len(dirtyList)

	// One topology pass fixes the new row lengths (in-degrees) and the
	// entry total; RowPtr follows by prefix sum. O(n) index state is the
	// same order as the solver's iterate vectors, so it does not move the
	// residency ceiling — only O(nnz) arrays must never materialize.
	indeg := make([]int64, n)
	var nnz int64
	for u := 0; u < n; u++ {
		for _, v := range topo.Successors(int32(u)) {
			indeg[v]++
			nnz++
		}
	}
	rowPtr := make([]int64, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + indeg[v]
	}

	// Chunk the dirty rows under the patch-buffer budget. Each chunk costs
	// one extra topology pass per section; chunking never changes the
	// committed bytes, only the rewrite's memory ceiling.
	type chunk struct{ lo, hi int } // index range into dirtyList
	var chunks []chunk
	for i := 0; i < len(dirtyList); {
		j, entries := i, int64(0)
		for j < len(dirtyList) {
			e := indeg[dirtyList[j]]
			if j > i && entries+e > int64(sr.bufEntries) {
				break
			}
			entries += e
			j++
		}
		chunks = append(chunks, chunk{i, j})
		i = j
	}

	// copySpan streams the clean rows [lo, hi) of the section from the old
	// generation's mapping, releasing pages behind each window. Clean rows
	// are contiguous between dirty ones, so one span copy covers them all.
	copySpan := func(w io.Writer, lo, hi int, vals bool) error {
		a, b := old.RowPtr[lo], old.RowPtr[hi]
		if b-a != rowPtr[hi]-rowPtr[lo] {
			return fmt.Errorf("clean rows [%d,%d) changed length; dirty tracking missed a row", lo, hi)
		}
		for p := a; p < b; p += slabCopyWindow {
			q := min(p+slabCopyWindow, b)
			var err error
			if vals {
				err = linalg.WriteFloat64sLE(w, old.Vals[p:q])
			} else {
				err = linalg.WriteInt32sLE(w, old.Cols[p:q])
			}
			if err != nil {
				return err
			}
			sr.sm.ReleaseEntries(p, q)
		}
		return nil
	}

	// emit writes one whole section (cols or vals) in row order,
	// interleaving clean-span copies with chunkwise-recomputed dirty rows.
	// The dirty fill is TransitionT's counting pass restricted to the
	// chunk: predecessors arrive in ascending u, weights are the exact
	// 1/len(succ) expression, so recomputed rows carry TransitionT's bits.
	emit := func(w io.Writer, vals bool) error {
		var bufCols []int32
		var bufVals []float64
		var bptr, cur []int64
		idx := make(map[int32]int, sr.bufEntries/16+1)
		next := 0 // next row to emit
		for _, ch := range chunks {
			rows := dirtyList[ch.lo:ch.hi]
			bptr = bptr[:0]
			bptr = append(bptr, 0)
			for k := range idx {
				delete(idx, k)
			}
			for i, v := range rows {
				idx[v] = i
				bptr = append(bptr, bptr[i]+indeg[v])
			}
			total := bptr[len(rows)]
			if vals {
				bufVals = slices.Grow(bufVals[:0], int(total))[:total]
			} else {
				bufCols = slices.Grow(bufCols[:0], int(total))[:total]
			}
			cur = append(cur[:0], bptr[:len(rows)]...)
			for u := 0; u < n; u++ {
				succ := topo.Successors(int32(u))
				if len(succ) == 0 {
					continue
				}
				var wgt float64
				if vals {
					wgt = 1 / float64(len(succ))
				}
				for _, v := range succ {
					li, ok := idx[v]
					if !ok {
						continue
					}
					if vals {
						bufVals[cur[li]] = wgt
					} else {
						bufCols[cur[li]] = int32(u)
					}
					cur[li]++
				}
			}
			for i, v := range rows {
				if int(v) > next {
					if err := copySpan(w, next, int(v), vals); err != nil {
						return err
					}
				}
				a, b := bptr[i], bptr[i+1]
				var err error
				if vals {
					err = linalg.WriteFloat64sLE(w, bufVals[a:b])
				} else {
					err = linalg.WriteInt32sLE(w, bufCols[a:b])
				}
				if err != nil {
					return err
				}
				next = int(v) + 1
			}
		}
		if next < n {
			return copySpan(w, next, n, vals)
		}
		return nil
	}

	err = linalg.WriteSlabFile(sr.fsys, path, linalg.SlabFloat64, linalg.SlabSections{
		Rows: n, Cols: n, NNZ: nnz,
		RowPtr: func(w io.Writer) error { return linalg.WriteInt64sLE(w, rowPtr) },
		ColIdx: func(w io.Writer) error { return emit(w, false) },
		Values: func(w io.Writer) error { return emit(w, true) },
	})
	if err != nil {
		return 0, 0, err
	}
	return patched, copied, nil
}
