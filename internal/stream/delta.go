// Package stream is the streaming delta pipeline: it accepts
// crawler-shaped edge deltas (add/remove links, new pages, new sources,
// content re-crawls), maintains the page graph and the derived
// source-consensus state incrementally, and republishes serving
// snapshots in time proportional to the churn instead of the corpus.
//
// The equivalence contract: after any sequence of applied batches, the
// streamed state is byte-for-byte the state a cold rebuild over the
// mutated page graph would produce — identical source graph (counts,
// transition weights, labels, page counts), identical κ assignment, and
// solver scores within solver tolerance of the cold solve. The
// metamorphic test suite enforces this against randomized delta
// sequences.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sourcerank/internal/pagegraph"
)

// Op enumerates the delta kinds a crawler emits.
type Op uint8

const (
	// OpAddSource registers a new source (Label).
	OpAddSource Op = iota + 1
	// OpAddPage registers a new page owned by Source.
	OpAddPage
	// OpAddEdge adds one link From → To. Parallel links are kept, as in
	// pagegraph.AddLink.
	OpAddEdge
	// OpRemoveEdge removes one occurrence of the link From → To.
	// Removing a link the page does not have rejects the whole batch.
	OpRemoveEdge
	// OpTouchPage records a content re-crawl of Page that found its
	// links unchanged. It validates the page exists and counts toward
	// churn statistics but changes no graph state, so a touch-only batch
	// lets the refresh take its skip-solve fast path.
	OpTouchPage
)

func (o Op) String() string {
	switch o {
	case OpAddSource:
		return "add-source"
	case OpAddPage:
		return "add-page"
	case OpAddEdge:
		return "add-edge"
	case OpRemoveEdge:
		return "remove-edge"
	case OpTouchPage:
		return "touch-page"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Delta is one mutation. Which fields are meaningful depends on Op; the
// constructors below set exactly the right ones.
type Delta struct {
	Op     Op
	Label  string             // OpAddSource
	Source pagegraph.SourceID // OpAddPage
	From   pagegraph.PageID   // OpAddEdge, OpRemoveEdge
	To     pagegraph.PageID   // OpAddEdge, OpRemoveEdge
	Page   pagegraph.PageID   // OpTouchPage
}

// AddSource is a Delta registering a new source.
func AddSource(label string) Delta { return Delta{Op: OpAddSource, Label: label} }

// AddPage is a Delta registering a new page under source s.
func AddPage(s pagegraph.SourceID) Delta { return Delta{Op: OpAddPage, Source: s} }

// AddEdge is a Delta adding one from → to link.
func AddEdge(from, to pagegraph.PageID) Delta { return Delta{Op: OpAddEdge, From: from, To: to} }

// RemoveEdge is a Delta removing one from → to link.
func RemoveEdge(from, to pagegraph.PageID) Delta {
	return Delta{Op: OpRemoveEdge, From: from, To: to}
}

// TouchPage is a Delta recording a no-change re-crawl of p.
func TouchPage(p pagegraph.PageID) Delta { return Delta{Op: OpTouchPage, Page: p} }

// Batch is an atomically applied group of deltas: either every delta
// validates and the whole batch commits, or none of it does. Seq orders
// batches; the write-ahead log stores one batch per sequence number.
type Batch struct {
	Seq    uint64
	Deltas []Delta
}

// Wire format (little-endian), the payload durable.WriteFile wraps with
// its CRC trailer:
//
//	magic "SRB1" | seq uint64 | count uint32 | count × delta
//	delta: op uint8 | payload
//	  add-source:  labelLen uint32 | label bytes
//	  add-page:    source int32
//	  add-edge:    from int32 | to int32
//	  remove-edge: from int32 | to int32
//	  touch-page:  page int32
const batchMagic = "SRB1"

// maxBatchDeltas bounds decode allocation against corrupt counts.
const maxBatchDeltas = 1 << 24

// maxLabelLen bounds decode allocation against corrupt label lengths.
const maxLabelLen = 1 << 16

// ErrBadBatch reports a malformed encoded batch.
var ErrBadBatch = errors.New("stream: malformed batch")

// EncodeBatch writes b's wire encoding to w.
func EncodeBatch(w io.Writer, b Batch) error {
	buf := AppendBatch(nil, b)
	_, err := w.Write(buf)
	return err
}

// AppendBatch appends b's wire encoding to dst and returns the extended
// slice.
func AppendBatch(dst []byte, b Batch) []byte {
	dst = append(dst, batchMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Deltas)))
	for _, d := range b.Deltas {
		dst = append(dst, byte(d.Op))
		switch d.Op {
		case OpAddSource:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.Label)))
			dst = append(dst, d.Label...)
		case OpAddPage:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Source))
		case OpAddEdge, OpRemoveEdge:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d.From))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d.To))
		case OpTouchPage:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Page))
		default:
			// Encoding an invalid op produces a batch DecodeBatch
			// rejects; the ingestor rejects it earlier still.
		}
	}
	return dst
}

// DecodeBatch parses one wire-encoded batch. Every structural defect —
// short buffer, bad magic, absurd counts, unknown op, trailing bytes —
// returns an error wrapping ErrBadBatch; no input can panic.
func DecodeBatch(data []byte) (Batch, error) {
	var b Batch
	if len(data) < len(batchMagic)+12 {
		return b, fmt.Errorf("%w: %d bytes is shorter than a header", ErrBadBatch, len(data))
	}
	if string(data[:4]) != batchMagic {
		return b, fmt.Errorf("%w: bad magic %q", ErrBadBatch, data[:4])
	}
	data = data[4:]
	b.Seq = binary.LittleEndian.Uint64(data)
	count := binary.LittleEndian.Uint32(data[8:])
	data = data[12:]
	if count > maxBatchDeltas {
		return Batch{}, fmt.Errorf("%w: delta count %d", ErrBadBatch, count)
	}
	b.Deltas = make([]Delta, 0, count)
	u32 := func() (uint32, bool) {
		if len(data) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data)
		data = data[4:]
		return v, true
	}
	for i := uint32(0); i < count; i++ {
		if len(data) < 1 {
			return Batch{}, fmt.Errorf("%w: truncated at delta %d", ErrBadBatch, i)
		}
		d := Delta{Op: Op(data[0])}
		data = data[1:]
		ok := true
		switch d.Op {
		case OpAddSource:
			var n uint32
			if n, ok = u32(); ok {
				if n > maxLabelLen || int(n) > len(data) {
					return Batch{}, fmt.Errorf("%w: label length %d at delta %d", ErrBadBatch, n, i)
				}
				d.Label = string(data[:n])
				data = data[n:]
			}
		case OpAddPage:
			var v uint32
			if v, ok = u32(); ok {
				d.Source = pagegraph.SourceID(v)
			}
		case OpAddEdge, OpRemoveEdge:
			var f, t uint32
			if f, ok = u32(); ok {
				if t, ok = u32(); ok {
					d.From, d.To = pagegraph.PageID(f), pagegraph.PageID(t)
				}
			}
		case OpTouchPage:
			var v uint32
			if v, ok = u32(); ok {
				d.Page = pagegraph.PageID(v)
			}
		default:
			return Batch{}, fmt.Errorf("%w: unknown op %d at delta %d", ErrBadBatch, d.Op, i)
		}
		if !ok {
			return Batch{}, fmt.Errorf("%w: truncated payload at delta %d", ErrBadBatch, i)
		}
		b.Deltas = append(b.Deltas, d)
	}
	if len(data) != 0 {
		return Batch{}, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(data))
	}
	return b, nil
}
