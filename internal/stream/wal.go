package stream

import (
	"fmt"
	"io"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"sourcerank/internal/durable"
)

// WAL is the batch write-ahead log: one durable.WriteFile-committed file
// per batch, named by sequence number. A batch is only applied to the
// in-memory graphs after its log entry is durably committed, so a crash
// between the two is recovered by replay — the log's complete prefix IS
// the authoritative delta history since the base corpus.
//
// Crash atomicity comes from durable.WriteFile's temp+rename+fsync
// protocol: a batch file either exists with a verified checksum or not
// at all; interrupted writes leave only temp files, which recovery
// ignores.
type WAL struct {
	fs      durable.FS
	dir     string
	lastSeq uint64
}

const walSuffix = ".batch"

func walName(seq uint64) string { return fmt.Sprintf("%016d%s", seq, walSuffix) }

// OpenWAL opens (or starts) the log in dir and returns the recovered
// batches in sequence order, ready to replay onto an ingestor built from
// the base corpus. fsys nil selects the real filesystem. The directory
// must already exist. Files that are not committed batch entries (temp
// files from interrupted writes, unrelated names) are ignored; a
// committed entry that fails its checksum or decode is a real error.
func OpenWAL(fsys durable.FS, dir string) (*WAL, []Batch, error) {
	if fsys == nil {
		fsys = durable.OS{}
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: opening wal: %w", err)
	}
	var batches []Batch
	w := &WAL{fs: fsys, dir: dir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, walSuffix), 10, 64)
		if err != nil {
			continue
		}
		data, err := durable.ReadFile(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("stream: wal entry %s: %w", name, err)
		}
		b, err := DecodeBatch(data)
		if err != nil {
			return nil, nil, fmt.Errorf("stream: wal entry %s: %w", name, err)
		}
		if b.Seq != seq {
			return nil, nil, fmt.Errorf("stream: wal entry %s holds seq %d", name, b.Seq)
		}
		batches = append(batches, b)
		if seq > w.lastSeq {
			w.lastSeq = seq
		}
	}
	slices.SortFunc(batches, func(a, b Batch) int {
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		}
		return 0
	})
	return w, batches, nil
}

// LastSeq is the highest durably logged sequence number (0 when empty).
func (w *WAL) LastSeq() uint64 { return w.lastSeq }

// Append durably commits b to the log. On error nothing was logged (an
// entry is only visible once its rename commits) — except a crash
// between rename and the directory fsync, where the entry may survive;
// recovery's replay plus the ingestor's sequence check make that safe.
func (w *WAL) Append(b Batch) error {
	if b.Seq <= w.lastSeq {
		return fmt.Errorf("%w: wal seq %d, logged through %d", ErrStaleSeq, b.Seq, w.lastSeq)
	}
	path := filepath.Join(w.dir, walName(b.Seq))
	if err := durable.WriteFile(w.fs, path, func(f io.Writer) error {
		return EncodeBatch(f, b)
	}); err != nil {
		return fmt.Errorf("stream: wal append seq %d: %w", b.Seq, err)
	}
	w.lastSeq = b.Seq
	return nil
}

// Truncate removes log entries with seq <= upTo. Callers use it after
// folding the logged history into a durable base (e.g. rewriting the
// corpus file); until then the full log is the recovery source and must
// be kept.
func (w *WAL) Truncate(upTo uint64) error {
	ents, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, walSuffix), 10, 64)
		if err != nil || seq > upTo {
			continue
		}
		if err := w.fs.Remove(filepath.Join(w.dir, name)); err != nil {
			return err
		}
	}
	return w.fs.SyncDir(w.dir)
}
