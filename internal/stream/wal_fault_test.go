package stream

import (
	"errors"
	"testing"

	"sourcerank/internal/durable"
	"sourcerank/internal/faultfs"
)

// These tests drive the WAL's commit protocol through injected disk
// faults: a failed fsync, a failed directory fsync after the rename, a
// crash mid-write, and read corruption during recovery. The invariant
// throughout is durable.WriteFile's: an Append either leaves a
// verifiable committed entry or (at worst, for a post-rename dir-fsync
// failure) an entry recovery handles idempotently — never a torn one.

func walBatch(seq uint64) Batch {
	return Batch{Seq: seq, Deltas: []Delta{
		AddSource("wal-fault.example"),
		AddPage(0),
		AddEdge(0, 0),
	}}
}

func TestWALAppendFsyncFailureCommitsNothing(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	w, recovered, err := OpenWAL(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh wal recovered %d batches", len(recovered))
	}

	// The first Sync in WriteFile's protocol is the data-file fsync,
	// before the rename: failing it must abort the commit entirely.
	ffs.FailNextSyncs(1)
	if err := w.Append(walBatch(1)); !errors.Is(err, faultfs.ErrSync) {
		t.Fatalf("append under fsync failure: %v, want ErrSync", err)
	}
	if w.LastSeq() != 0 {
		t.Fatalf("LastSeq advanced to %d after failed append", w.LastSeq())
	}
	if _, recovered, err := OpenWAL(ffs, dir); err != nil || len(recovered) != 0 {
		t.Fatalf("reopen after failed append: %d batches, err %v; want empty", len(recovered), err)
	}

	// The disk recovers: retrying the same sequence number succeeds and
	// the entry is durably recovered.
	if err := w.Append(walBatch(1)); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	_, recovered, err = OpenWAL(ffs, dir)
	if err != nil || len(recovered) != 1 || recovered[0].Seq != 1 {
		t.Fatalf("reopen after retry: %+v, err %v; want seq 1", recovered, err)
	}
}

// dirSyncFailFS fails SyncDir (the post-rename directory fsync) while
// letting file-level Syncs through — the one window in WriteFile's
// protocol where an Append error can leave a committed entry behind.
type dirSyncFailFS struct {
	durable.FS
	fail int
}

var errDirSync = errors.New("injected directory fsync failure")

func (d *dirSyncFailFS) SyncDir(name string) error {
	if d.fail > 0 {
		d.fail--
		return errDirSync
	}
	return d.FS.SyncDir(name)
}

func TestWALAppendDirSyncFailureIsRecoverable(t *testing.T) {
	dir := t.TempDir()
	dfs := &dirSyncFailFS{FS: durable.OS{}}
	w, _, err := OpenWAL(dfs, dir)
	if err != nil {
		t.Fatal(err)
	}

	dfs.fail = 1
	if err := w.Append(walBatch(1)); !errors.Is(err, errDirSync) {
		t.Fatalf("append under dir-fsync failure: %v", err)
	}
	if w.LastSeq() != 0 {
		t.Fatalf("LastSeq advanced to %d after failed append", w.LastSeq())
	}

	// The rename had already committed, so the entry may be visible on
	// reopen — the documented crash window. Recovery must either see
	// nothing or see the complete, verifiable entry; the caller's retry
	// of the same sequence number must then be handled idempotently.
	_, recovered, err := OpenWAL(dfs, dir)
	if err != nil {
		t.Fatalf("reopen after dir-fsync failure: %v", err)
	}
	switch len(recovered) {
	case 0:
		if err := w.Append(walBatch(1)); err != nil {
			t.Fatalf("retry append: %v", err)
		}
	case 1:
		if recovered[0].Seq != 1 {
			t.Fatalf("recovered seq %d, want 1", recovered[0].Seq)
		}
		// The writer (which never saw the commit) retries seq 1: the
		// rewrite replaces the identical entry, converging, not
		// corrupting.
		if err := w.Append(walBatch(1)); err != nil {
			t.Fatalf("idempotent rewrite of seq 1: %v", err)
		}
	default:
		t.Fatalf("recovered %d entries from one append", len(recovered))
	}
	_, recovered, err = OpenWAL(dfs, dir)
	if err != nil || len(recovered) != 1 || recovered[0].Seq != 1 {
		t.Fatalf("final state: %d entries, err %v; want exactly seq 1", len(recovered), err)
	}
}

func TestWALAppendCrashMidWriteLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	w, _, err := OpenWAL(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(1)); err != nil {
		t.Fatal(err)
	}

	// Crash a few bytes into the next entry's write: the temp file is
	// torn on disk, but it was never renamed, so recovery ignores it.
	ffs.SetWriteBudget(5)
	if err := w.Append(walBatch(2)); !errors.Is(err, faultfs.ErrCrash) {
		t.Fatalf("append past write budget: %v, want ErrCrash", err)
	}
	if w.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d after crashed append, want 1", w.LastSeq())
	}

	ffs.Heal()
	w2, recovered, err := OpenWAL(ffs, dir)
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	if len(recovered) != 1 || recovered[0].Seq != 1 {
		t.Fatalf("recovered %+v, want only seq 1", recovered)
	}
	// The restarted process replays and appends where it left off.
	if err := w2.Append(walBatch(2)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if _, recovered, _ := OpenWAL(ffs, dir); len(recovered) != 2 {
		t.Fatalf("recovered %d entries after healed retry, want 2", len(recovered))
	}
}

func TestWALRecoveryRejectsCorruptedEntries(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	w, _, err := OpenWAL(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walBatch(2)); err != nil {
		t.Fatal(err)
	}

	// Bit-rot in a committed entry: recovery must fail loudly with the
	// corruption sentinel, not replay a damaged batch.
	ffs.CorruptReads(func(name string, off int64, p []byte) {
		if off == 0 && len(p) > 12 {
			p[12] ^= 0x20
		}
	})
	if _, _, err := OpenWAL(ffs, dir); !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("recovery over corrupted entry: %v, want ErrCorrupt", err)
	}

	// The rot was transient (a bad read, not bad data): a clean reopen
	// still recovers both entries.
	ffs.CorruptReads(nil)
	if _, recovered, err := OpenWAL(ffs, dir); err != nil || len(recovered) != 2 {
		t.Fatalf("clean reopen: %d entries, err %v; want 2", len(recovered), err)
	}
}
