package stream

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"

	"sourcerank/internal/faultfs"
	"sourcerank/internal/server"
)

// TestChaosWALKillResumeConverges kills the process (a faultfs write
// budget) at random points inside write-ahead-log appends, restarts from
// the base corpus plus whatever the log durably holds, reconciles which
// batches actually landed via the sequence number, and re-submits the
// ones that did not. After the storm, the recovered state must be
// bitwise identical to a fault-free pipeline fed exactly the batches
// that landed, and a refresh over both must agree on κ and scores.
func TestChaosWALKillResumeConverges(t *testing.T) {
	baseRNG := rand.New(rand.NewSource(99))
	base := randomCorpus(baseRNG, 14, 50, 160)
	spam := []int32{0, 5, 9}

	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			ffs := faultfs.New(nil)
			opt := Options{Spam: spam, TopK: 4, WALDir: dir, FS: ffs}

			p, err := NewPipeline(base.Clone(), opt)
			if err != nil {
				t.Fatal(err)
			}
			var applied [][]Delta
			const batches = 25
			crashes := 0
			for len(applied) < batches {
				deltas := randomDeltas(rng, p.Ingestor().PageGraph())
				// Arm a crash inside roughly half the appends; later
				// iterations run clean so the loop always terminates.
				if crashes < 40 && rng.Intn(2) == 0 {
					ffs.SetWriteBudget(int64(1 + rng.Intn(120)))
				}
				seqBefore := p.LastSeq()
				_, err := p.Apply(deltas)
				if err == nil {
					applied = append(applied, deltas)
					if rng.Intn(4) == 0 {
						if _, _, err := p.Refresh(); err != nil {
							t.Fatalf("refresh: %v", err)
						}
					}
					continue
				}
				if !errors.Is(err, faultfs.ErrCrash) {
					t.Fatalf("non-crash apply failure: %v", err)
				}
				crashes++
				// Process restart: heal the disk, rebuild from the base
				// corpus, replay the durable log.
				ffs.Heal()
				p, err = NewPipeline(base.Clone(), opt)
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				if p.LastSeq() > seqBefore {
					// The append committed before the crash; the batch
					// is part of history even though Apply errored.
					applied = append(applied, deltas)
				}
			}
			ffs.Heal()
			if crashes == 0 {
				t.Fatalf("chaos run exercised no crashes")
			}
			if p.LastSeq() != uint64(len(applied)) {
				t.Fatalf("recovered seq %d, want %d landed batches", p.LastSeq(), len(applied))
			}

			// Fault-free reference: same base, same landed batches, no WAL.
			ref, err := NewPipeline(base.Clone(), Options{Spam: spam, TopK: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i, deltas := range applied {
				if _, err := ref.Apply(deltas); err != nil {
					t.Fatalf("reference batch %d: %v", i, err)
				}
			}
			assertSameSourceGraph(t, p.Ingestor().Emit(), ref.Ingestor().Emit())

			got, _, err := p.Refresh()
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := ref.Refresh()
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(p.Kappa(), ref.Kappa()) {
				t.Fatal("recovered κ diverged from fault-free reference")
			}
			for _, algo := range want.Algos() {
				a, b := got.Set(algo).ScoresView(), want.Set(algo).ScoresView()
				if len(a) != len(b) {
					t.Fatalf("%s: %d scores vs %d", algo, len(a), len(b))
				}
				// Warm-started recovery solves sit within solver
				// tolerance of the reference's cold solve, not bitwise.
				if d := maxAbsDiff(a, b); d > 1e-6 {
					t.Fatalf("%s scores diverged by %g after recovery", algo, d)
				}
			}
		})
	}
}

// TestConcurrentApplyRefreshServe runs delta ingest and delta-aware
// publishes concurrently with HTTP readers hammering the pre-encoded
// hot path, under the race detector in CI. Readers must always observe
// a coherent snapshot (monotonic versions, parseable bodies).
func TestConcurrentApplyRefreshServe(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pg := randomCorpus(rng, 16, 60, 200)
	store := server.NewStore(nil)
	p, err := NewPipeline(pg, Options{Spam: []int32{2, 6}, TopK: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(store, server.Config{}).Handler())
	defer srv.Close()

	done := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		// Writer: batches of churn, each folded into a publish.
		defer writer.Done()
		wrng := rand.New(rand.NewSource(22))
		for i := 0; i < 30; i++ {
			if _, err := p.Apply(randomDeltas(wrng, p.Ingestor().PageGraph())); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
			if _, _, err := p.Refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			paths := []string{"/v1/topk?n=10&algo=srsr", "/v1/rank/0", "/v1/snapshot", "/v1/topk?n=3&algo=pagerank"}
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := srv.Client().Get(srv.URL + paths[r%len(paths)])
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("reader: status %d: %s", resp.StatusCode, body)
					return
				}
				if cur := store.Current().Version(); cur < last {
					t.Errorf("version went backwards: %d after %d", cur, last)
					return
				} else {
					last = cur
				}
			}
		}(r)
	}
	writer.Wait()
	close(done)
	readers.Wait()
	if pubs := store.Publishes(); pubs != 31 && !t.Failed() {
		t.Fatalf("publishes = %d, want 31", pubs)
	}
}
