package stream

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"sourcerank/internal/core"
	"sourcerank/internal/durable"
	"sourcerank/internal/linalg"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/rank"
	"sourcerank/internal/server"
	"sourcerank/internal/source"
)

// Options configures a streaming Pipeline. The zero value of every
// numeric field selects the same default the cold builder
// (server.BuildSnapshot) uses, which is what the equivalence contract
// requires.
type Options struct {
	// Spam lists the pre-labeled spam source IDs seeding the proximity
	// walk. Empty skips SRSR, as in the cold builder.
	Spam []int32
	// Algos selects the score sets to maintain; nil means
	// server.DefaultAlgos.
	Algos []server.Algo
	// TopK throttled sources; 0 derives 2.7% of the current source
	// count at each refresh.
	TopK int
	// TrustedSeeds is the TrustRank seed count; 0 defaults to 10.
	TrustedSeeds int
	// Alpha, Tol, MaxIter, Workers mirror server.BuildConfig.
	Alpha   float64
	Tol     float64
	MaxIter int
	Workers int
	// Name labels the corpus in snapshot metadata.
	Name string
	// CompactEvery is the patched-structure-row threshold past which a
	// refresh folds the topology overlay into a fresh CSR; 0 defaults
	// to 256. Compaction never changes results, only lookup cost.
	CompactEvery int
	// WALDir, when non-empty, write-ahead-logs every batch into this
	// (existing) directory before applying it, and NewPipeline replays
	// the log over the base corpus on startup.
	WALDir string
	// FS is the filesystem the WAL commits through; nil selects the
	// real one. Chaos tests inject faults here.
	FS durable.FS
	// Store, when set, receives every refreshed snapshot via Publish.
	Store *server.Store
	// SlabDir, when non-empty, maintains the shared PageRank/TrustRank
	// transition operand Mᵀ as slab generations under this (existing)
	// directory instead of an in-heap CSR: each topology change commits
	// transition_t.gen<version>.slab through internal/durable's
	// atomic-rename protocol by recomputing only the dirty predecessor
	// rows and byte-copying every clean row from the previous generation,
	// and the solves stream the mapped file. Published scores are bitwise
	// identical to the in-heap pipeline's. Slab commits go through FS.
	SlabDir string
	// MaxResident, with SlabDir set, bounds the resident footprint of the
	// mapped generation during solves and rewrites (see
	// linalg.SlabOpenOptions.MaxResident); <= 0 maps without
	// release-behind.
	MaxResident int64
	// SlabPatchEntries bounds the dirty-row patch buffer of a generation
	// rewrite, in matrix entries; dirty rows are recomputed in ascending
	// chunks no larger than this. 0 defaults to 1<<20. Chunking never
	// changes the committed bytes, only the rewrite's memory ceiling.
	SlabPatchEntries int
}

func (o Options) algos() []server.Algo {
	if len(o.Algos) == 0 {
		return server.DefaultAlgos
	}
	return o.Algos
}

func (o Options) compactEvery() int {
	if o.CompactEvery <= 0 {
		return 256
	}
	return o.CompactEvery
}

func (o Options) topK(n int) int {
	if o.TopK > 0 {
		return o.TopK
	}
	return int(0.027*float64(n) + 0.5)
}

func (o Options) rankOptions(x0, tele linalg.Vector) rank.Options {
	return rank.Options{
		Alpha: o.Alpha, Tol: o.Tol, MaxIter: o.MaxIter, Workers: o.Workers,
		X0: x0, Teleport: tele,
	}
}

// RefreshStats reports what one Refresh actually did — which stages were
// skipped, how much state was dirty, and where the time went.
type RefreshStats struct {
	// Seq is the ingest sequence the snapshot reflects.
	Seq uint64
	// Version is the published snapshot version (0 when no Store).
	Version uint64
	// SolveSkipped: the SRSR stationary solve was replaced by a single
	// residual probe because nothing feeding it changed.
	SolveSkipped bool
	// ProximityCold: the spam-proximity walk ran cold (first refresh,
	// contested κ boundary, or Graded mode).
	ProximityCold bool
	// KappaChanged is the number of κ entries this refresh flipped.
	KappaChanged int
	// PageRankSkipped / TrustRankSkipped: the baseline solve reused the
	// previous vector because its operator (and, for TrustRank, its
	// seed set) was unchanged.
	PageRankSkipped  bool
	TrustRankSkipped bool
	// Compacted: the structure overlay was folded this refresh.
	Compacted bool
	// SlabRowsPatched / SlabRowsCopied count Mᵀ rows recomputed vs
	// byte-copied from the previous generation when this refresh rewrote
	// a transition slab generation (SlabDir mode only; both zero when the
	// mapped generation was already current).
	SlabRowsPatched int
	SlabRowsCopied  int
	// Emit, Solve, Publish, Total are wall times for the stages.
	Emit    time.Duration
	Solve   time.Duration
	Publish time.Duration
	Total   time.Duration
}

// Pipeline composes the streaming stack: an Ingestor (page graph +
// incremental source consensus), an optional write-ahead log, the warm
// SRSR refresh (core.PipelineRefresh), warm PageRank/TrustRank baseline
// solves sharing one transposed transition build, and delta-aware
// snapshot publication. All methods are safe for concurrent use; one
// mutex serializes ingest and refresh, while published snapshots are
// read lock-free as usual.
type Pipeline struct {
	mu  sync.Mutex
	opt Options
	ing *Ingestor
	wal *WAL

	st core.RefreshState // SRSR warm state

	// Baseline warm state. The uniform-weight baselines depend only on
	// the unweighted source topology, so everything here is keyed on the
	// ingestor's StructureVersion: mt (Mᵀ of the structure) is rebuilt,
	// and the retained PageRank/TrustRank vectors re-solved, only when
	// consensus edges appeared or vanished — count drift within existing
	// cells leaves their fixed points provably unchanged.
	mt      *linalg.CSR
	mtVer   uint64
	slab    *slabRefresher // non-nil in SlabDir mode; then mt stays nil
	prSc    linalg.Vector
	prStats linalg.IterStats
	prVer   uint64
	trSc    linalg.Vector
	trStats linalg.IterStats
	trVer   uint64
	trSeeds []int32

	sg *source.Graph // last emitted source graph
}

// NewPipeline builds the streaming pipeline over pg: full initial
// aggregation, then — when a WAL directory is configured — replay of
// every logged batch over it, restoring the pre-crash graph state
// exactly. pg is retained and mutated.
func NewPipeline(pg *pagegraph.Graph, opt Options) (*Pipeline, error) {
	ing, err := NewIngestor(pg, source.Options{Workers: opt.Workers})
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	p := &Pipeline{opt: opt, ing: ing}
	if opt.SlabDir != "" {
		p.slab = newSlabRefresher(opt)
		p.slab.pruneStale()
	}
	if opt.WALDir != "" {
		wal, batches, err := OpenWAL(opt.FS, opt.WALDir)
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			if err := ing.Apply(b); err != nil {
				return nil, fmt.Errorf("stream: replaying wal seq %d: %w", b.Seq, err)
			}
		}
		p.wal = wal
	}
	return p, nil
}

// LastSeq is the highest applied batch sequence number.
func (p *Pipeline) LastSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ing.LastSeq()
}

// Stats returns cumulative ingest counters.
func (p *Pipeline) Stats() IngestStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ing.Stats()
}

// Ingestor exposes the underlying ingestor for equivalence tests. The
// caller must not mutate through it concurrently with Apply/Refresh.
func (p *Pipeline) Ingestor() *Ingestor { return p.ing }

// Kappa returns a copy of the current throttling vector (nil before the
// first SRSR refresh). The equivalence suite compares it bitwise against
// a cold rebuild's κ.
func (p *Pipeline) Kappa() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.Kappa == nil {
		return nil
	}
	return slices.Clone(p.st.Kappa)
}

// Apply validates deltas as one atomic batch, assigns it the next
// sequence number, write-ahead-logs it (when configured), and commits it
// to the in-memory graphs. It returns the assigned sequence number; on
// error nothing was applied, though after a mid-crash the batch may
// still be in the log (recovery replays it, and the returned sequence
// lets callers reconcile what landed).
func (p *Pipeline) Apply(deltas []Delta) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	seq := p.ing.LastSeq() + 1
	if p.wal != nil && p.wal.LastSeq() >= seq {
		// A pre-crash append survived without its commit; skip past it.
		seq = p.wal.LastSeq() + 1
	}
	b := Batch{Seq: seq, Deltas: deltas}
	st, err := p.ing.stage(b)
	if err != nil {
		return 0, err
	}
	if p.wal != nil {
		if err := p.wal.Append(b); err != nil {
			return 0, err
		}
	}
	p.ing.commit(b, st)
	return seq, nil
}

// Refresh folds all applied deltas into fresh score vectors and a new
// serving snapshot. Cost is proportional to the churn since the last
// refresh: only dirty consensus rows re-aggregate, the proximity walk
// and stationary solves warm-start from the previous vectors (skipping
// entirely when their inputs are unchanged), and the snapshot encoder
// reuses response bytes for unchanged entries.
func (p *Pipeline) Refresh() (*server.Snapshot, RefreshStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var stats RefreshStats
	t0 := time.Now()
	stats.Seq = p.ing.LastSeq()

	if p.slab != nil {
		// Capture the dirty Mᵀ rows before Emit consumes the pending set:
		// a changed source row invalidates the predecessor rows of both
		// its old and its new successors.
		p.ing.ForEachPendingStructureRow(func(r int32, old, next []int32) {
			p.slab.invalidate(old, next)
		})
	}
	sg := p.ing.Emit()
	stats.Compacted = p.ing.CompactStructure(p.opt.compactEvery())
	stats.Emit = time.Since(t0)
	p.sg = sg
	n := sg.NumSources()
	topK := p.opt.topK(n)
	sv := p.ing.StructureVersion()

	tSolve := time.Now()
	sets := make(map[server.Algo]*server.ScoreSet, len(p.opt.algos()))
	for _, algo := range p.opt.algos() {
		switch algo {
		case server.AlgoSRSR:
			if len(p.opt.Spam) == 0 {
				continue
			}
			res, info, err := core.PipelineRefresh(sg, p.ing.Structure(), core.PipelineConfig{
				Config:    core.Config{Alpha: p.opt.Alpha, Tol: p.opt.Tol, MaxIter: p.opt.MaxIter, Workers: p.opt.Workers},
				SpamSeeds: p.opt.Spam,
				TopK:      topK,
			}, &p.st)
			if err != nil {
				return nil, stats, fmt.Errorf("stream: srsr refresh: %w", err)
			}
			stats.SolveSkipped = info.SolveSkipped
			stats.ProximityCold = info.ProximityCold
			stats.KappaChanged = info.KappaChanged
			sets[algo] = server.NewScoreSet(res.Scores, res.Stats)
		case server.AlgoPageRank:
			if p.prSc != nil && p.prVer == sv && len(p.prSc) == n {
				stats.PageRankSkipped = true
			} else {
				mt, err := p.transition(sv, &stats)
				if err != nil {
					return nil, stats, err
				}
				res, err := rank.StationaryT(mt, p.opt.rankOptions(padded(p.prSc, n), nil))
				if err != nil {
					return nil, stats, fmt.Errorf("stream: pagerank refresh: %w", err)
				}
				p.prSc, p.prStats, p.prVer = res.Scores, res.Stats, sv
			}
			sets[algo] = server.NewScoreSet(p.prSc, p.prStats)
		case server.AlgoTrustRank:
			seeds := trustedSeeds(sg, p.opt.TrustedSeeds, p.opt.Spam)
			if p.trSc != nil && p.trVer == sv && len(p.trSc) == n && slices.Equal(seeds, p.trSeeds) {
				stats.TrustRankSkipped = true
			} else {
				mt, err := p.transition(sv, &stats)
				if err != nil {
					return nil, stats, err
				}
				tele := linalg.NewVector(n)
				for _, s := range seeds {
					tele[s] = 1
				}
				tele.Normalize1()
				res, err := rank.StationaryT(mt, p.opt.rankOptions(padded(p.trSc, n), tele))
				if err != nil {
					return nil, stats, fmt.Errorf("stream: trustrank refresh: %w", err)
				}
				p.trSc, p.trStats, p.trVer, p.trSeeds = res.Scores, res.Stats, sv, seeds
			}
			sets[algo] = server.NewScoreSet(p.trSc, p.trStats)
		default:
			return nil, stats, fmt.Errorf("stream: unknown algorithm %q", algo)
		}
	}
	stats.Solve = time.Since(tSolve)
	if len(sets) == 0 {
		return nil, stats, fmt.Errorf("stream: no score sets computed (srsr needs spam labels)")
	}

	tPub := time.Now()
	pg := p.ing.PageGraph()
	info := server.CorpusInfo{
		Name:        p.opt.Name,
		Pages:       pg.NumPages(),
		Links:       pg.NumLinks(),
		SpamLabeled: len(p.opt.Spam),
	}
	snap, err := server.NewSnapshot(info, sg.Labels, sg.PageCount, topK, sets, time.Now())
	if err != nil {
		return nil, stats, err
	}
	if p.opt.Store != nil {
		stats.Version = p.opt.Store.Publish(snap)
	}
	stats.Publish = time.Since(tPub)
	stats.Total = time.Since(t0)
	return snap, stats, nil
}

// transition resolves the shared Mᵀ operand for the baseline solves: the
// in-heap CSR by default, or the current slab generation in SlabDir mode
// (rewriting it first when the topology moved, with the patch/copy row
// accounting folded into stats).
func (p *Pipeline) transition(sv uint64, stats *RefreshStats) (*linalg.CSR, error) {
	if p.slab == nil {
		p.ensureTransition(sv)
		return p.mt, nil
	}
	mt, patched, copied, err := p.slab.ensure(p.ing.Structure(), sv)
	if err != nil {
		return nil, err
	}
	stats.SlabRowsPatched += patched
	stats.SlabRowsCopied += copied
	return mt, nil
}

// Close releases the resources a slab-backed pipeline holds open (the
// mapped transition generation); its operand must not be used after.
// Pipelines without SlabDir hold nothing and need no Close.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.slab != nil {
		return p.slab.close()
	}
	return nil
}

// ensureTransition rebuilds the shared transposed transition matrix Mᵀ
// when the source topology's sparsity changed since it was built (Mᵀ
// weights rows uniformly, so count drift cannot alter it). PageRank and
// TrustRank differ only in teleport vector, so one build serves both.
func (p *Pipeline) ensureTransition(sv uint64) {
	if p.mt != nil && p.mtVer == sv {
		return
	}
	p.mt = rank.TransitionT(p.ing.Structure())
	p.mtVer = sv
}

// trustedSeeds mirrors the cold builder's seed selection exactly: the k
// non-spam sources with the most pages, ties to the lower ID.
func trustedSeeds(sg *source.Graph, k int, spam []int32) []int32 {
	if k <= 0 {
		k = 10
	}
	ex := make(map[int32]bool, len(spam))
	for _, s := range spam {
		ex[s] = true
	}
	ids := make([]int32, 0, sg.NumSources())
	for i := range sg.PageCount {
		if !ex[int32(i)] {
			ids = append(ids, int32(i))
		}
	}
	slices.SortFunc(ids, func(a, b int32) int {
		ca, cb := sg.PageCount[a], sg.PageCount[b]
		if ca != cb {
			return cb - ca
		}
		return int(a - b)
	})
	if k > len(ids) {
		k = len(ids)
	}
	return slices.Clone(ids[:k])
}

// padded adapts a previous-shape vector to n entries (new sources start
// at zero mass; the solver renormalizes), preserving nil.
func padded(v linalg.Vector, n int) linalg.Vector {
	if v == nil {
		return nil
	}
	if len(v) >= n {
		return v[:n]
	}
	out := make(linalg.Vector, n)
	copy(out, v)
	return out
}
