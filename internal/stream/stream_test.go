package stream

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"sourcerank/internal/core"
	"sourcerank/internal/linalg"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/rankeval"
	"sourcerank/internal/server"
	"sourcerank/internal/source"
)

// randomCorpus builds a connected-ish random page graph with parallel
// links and self-links already present, so deltas land on a graph that
// exercises every consensus edge case from the start.
func randomCorpus(rng *rand.Rand, sources, pages, links int) *pagegraph.Graph {
	pg := pagegraph.New()
	for s := 0; s < sources; s++ {
		pg.AddSource(fmt.Sprintf("s%03d.example", s))
	}
	for p := 0; p < pages; p++ {
		pg.AddPage(pagegraph.SourceID(rng.Intn(sources)))
	}
	for l := 0; l < links; l++ {
		pg.AddLink(pagegraph.PageID(rng.Intn(pages)), pagegraph.PageID(rng.Intn(pages)))
	}
	return pg
}

// randomDeltas generates one valid batch against the current state of
// pg, covering adds, removes, duplicate edges, self-edges, brand-new
// sources/pages referenced within the same batch, and touches. removed
// tracks pages this batch already edited links away from, so it never
// removes the same physical link twice.
func randomDeltas(rng *rand.Rand, pg *pagegraph.Graph) []Delta {
	var ds []Delta
	pages := pg.NumPages()
	sources := pg.NumSources()
	stagedPages := 0
	removedFrom := map[pagegraph.PageID]bool{}
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k == 0: // new source, with a page and an edge into the old graph
			ds = append(ds, AddSource(fmt.Sprintf("new%d.example", rng.Int31())))
			newPage := pagegraph.PageID(pages + stagedPages)
			ds = append(ds, AddPage(pagegraph.SourceID(sources)))
			sources++
			stagedPages++
			if pages > 0 {
				ds = append(ds, AddEdge(newPage, pagegraph.PageID(rng.Intn(pages))))
				ds = append(ds, AddEdge(pagegraph.PageID(rng.Intn(pages)), newPage))
			}
		case k == 1: // new page in an existing source
			ds = append(ds, AddPage(pagegraph.SourceID(rng.Intn(sources))))
			stagedPages++
		case k <= 4 && pages > 0: // add edge; sometimes duplicated, sometimes a self-edge
			from := pagegraph.PageID(rng.Intn(pages))
			to := pagegraph.PageID(rng.Intn(pages))
			if rng.Intn(5) == 0 {
				to = from
			}
			ds = append(ds, AddEdge(from, to))
			if rng.Intn(4) == 0 {
				ds = append(ds, AddEdge(from, to))
			}
		case k <= 7 && pages > 0: // remove an existing edge
			for tries := 0; tries < 8; tries++ {
				p := pagegraph.PageID(rng.Intn(pages))
				out := pg.OutLinks(p)
				if len(out) == 0 || removedFrom[p] {
					continue
				}
				ds = append(ds, RemoveEdge(p, out[rng.Intn(len(out))]))
				removedFrom[p] = true
				break
			}
		default:
			if pages > 0 {
				ds = append(ds, TouchPage(pagegraph.PageID(rng.Intn(pages))))
			}
		}
	}
	if len(ds) == 0 {
		ds = append(ds, AddSource(fmt.Sprintf("lone%d.example", rng.Int31())))
	}
	return ds
}

func csrEqual(t *testing.T, what string, got, want *linalg.CSR) {
	t.Helper()
	if got.Rows != want.Rows || got.ColsN != want.ColsN {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.ColsN, want.Rows, want.ColsN)
	}
	if !slices.Equal(got.RowPtr, want.RowPtr) {
		t.Fatalf("%s: RowPtr diverged", what)
	}
	if !slices.Equal(got.Cols, want.Cols) {
		t.Fatalf("%s: Cols diverged", what)
	}
	for k := range got.Vals {
		if math.Float64bits(got.Vals[k]) != math.Float64bits(want.Vals[k]) {
			t.Fatalf("%s: Vals[%d] = %v, want %v (bitwise)", what, k, got.Vals[k], want.Vals[k])
		}
	}
}

// assertSameSourceGraph enforces the bitwise half of the equivalence
// contract: the streamed source graph must be indistinguishable from a
// cold re-aggregation of the mutated page graph.
func assertSameSourceGraph(t *testing.T, got, want *source.Graph) {
	t.Helper()
	if !slices.Equal(got.Labels, want.Labels) {
		t.Fatalf("labels diverged: %d vs %d entries", len(got.Labels), len(want.Labels))
	}
	if !slices.Equal(got.PageCount, want.PageCount) {
		t.Fatalf("page counts diverged")
	}
	if got.NumEdges != want.NumEdges {
		t.Fatalf("edge count %d, want %d", got.NumEdges, want.NumEdges)
	}
	csrEqual(t, "Counts", got.Counts, want.Counts)
	csrEqual(t, "T", got.T, want.T)
}

func maxAbsDiff(a, b linalg.Vector) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

// TestMetamorphicStreamEqualsCold is the core equivalence suite:
// randomized delta sequences (adds, removes, duplicate and self edges,
// new sources and pages referenced within their own batch, touches,
// multiple interleaved batches per refresh) are streamed through the
// pipeline, and after every refresh the streamed state must match a
// cold rebuild over the mutated page graph — bitwise for the source
// graph and κ, within solver tolerance (plus rank-correlation gates)
// for every algorithm's scores.
func TestMetamorphicStreamEqualsCold(t *testing.T) {
	const topK = 5
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pg := randomCorpus(rng, 24, 90, 320)
			spam := []int32{0, 3, 7, 11}
			p, err := NewPipeline(pg, Options{Spam: spam, TopK: topK, Name: "meta"})
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 20; step++ {
				for b := 1 + rng.Intn(3); b > 0; b-- {
					if _, err := p.Apply(randomDeltas(rng, pg)); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
				snap, _, err := p.Refresh()
				if err != nil {
					t.Fatalf("step %d: refresh: %v", step, err)
				}
				if err := pg.Validate(); err != nil {
					t.Fatalf("step %d: page graph corrupted: %v", step, err)
				}

				coldSG, err := source.Build(pg, source.Options{})
				if err != nil {
					t.Fatalf("step %d: cold build: %v", step, err)
				}
				assertSameSourceGraph(t, p.Ingestor().Emit(), coldSG)

				coldRes, err := core.PipelineFromSourceGraph(coldSG, core.PipelineConfig{
					SpamSeeds: spam, TopK: topK,
				})
				if err != nil {
					t.Fatalf("step %d: cold pipeline: %v", step, err)
				}
				if !slices.Equal(p.Kappa(), coldRes.Kappa) {
					t.Fatalf("step %d: streamed κ diverged from cold rebuild", step)
				}

				coldSnap, err := server.BuildSnapshot(pg, spam, server.BuildConfig{TopK: topK, Name: "meta"})
				if err != nil {
					t.Fatalf("step %d: cold snapshot: %v", step, err)
				}
				for _, algo := range coldSnap.Algos() {
					warm := snap.Set(algo)
					if warm == nil {
						t.Fatalf("step %d: streamed snapshot missing %s", step, algo)
					}
					a, b := warm.ScoresView(), coldSnap.Set(algo).ScoresView()
					if len(a) != len(b) {
						t.Fatalf("step %d: %s: %d scores vs cold %d", step, algo, len(a), len(b))
					}
					if d := maxAbsDiff(a, b); d > 1e-6 {
						t.Fatalf("step %d: %s scores diverged by %g", step, algo, d)
					}
					tau, err := rankeval.KendallTau(a, b)
					if err != nil {
						t.Fatal(err)
					}
					if tau < 0.99 {
						t.Fatalf("step %d: %s Kendall τ = %v vs cold rebuild", step, algo, tau)
					}
					ov, err := rankeval.TopKOverlap(a, b, topK)
					if err != nil {
						t.Fatal(err)
					}
					if ov < 0.8 {
						t.Fatalf("step %d: %s top-%d overlap = %v vs cold rebuild", step, algo, topK, ov)
					}
				}
			}
		})
	}
}

// TestApplyRejectsInvalidBatchAtomically drives every rejection class —
// unknown source, unknown page, removing an absent link, removing more
// parallel copies than exist, an unknown op, a stale sequence — and
// checks the batch leaves no trace: same graph counts, same emitted
// source-graph pointer, same sequence number, and a subsequent valid
// batch still applies.
func TestApplyRejectsInvalidBatchAtomically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pg := randomCorpus(rng, 6, 20, 40)
	p, err := NewPipeline(pg, Options{Spam: []int32{0}, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Ingestor().Emit()
	pages, links := pg.NumPages(), pg.NumLinks()
	seq := p.LastSeq()

	// A page the graph does not have (but whose id is near-miss valid),
	// reached only after valid deltas that must roll back with it.
	bad := [][]Delta{
		{AddPage(2), AddEdge(0, pagegraph.PageID(pages + 1))},      // staged page count off by one
		{AddEdge(0, 1), AddPage(99)},                               // unknown source
		{RemoveEdge(0, pagegraph.PageID(pages + 5))},               // unknown target page
		{AddEdge(3, 3), {Op: Op(42)}},                              // unknown op
		{TouchPage(pagegraph.PageID(pages))},                       // touch of unknown page
		{AddSource("x.example"), AddPage(pagegraph.SourceID(999))}, // source id not the staged one
	}
	// Removing the same physical link twice when only one copy exists.
	var victim pagegraph.PageID = -1
	for pid := 0; pid < pages; pid++ {
		out := pg.OutLinks(pagegraph.PageID(pid))
		if len(out) == 1 {
			victim = pagegraph.PageID(pid)
			bad = append(bad, []Delta{RemoveEdge(victim, out[0]), RemoveEdge(victim, out[0])})
			break
		}
	}
	for i, deltas := range bad {
		if _, err := p.Apply(deltas); err == nil {
			t.Fatalf("bad batch %d applied", i)
		}
		if pg.NumPages() != pages || pg.NumLinks() != links {
			t.Fatalf("bad batch %d mutated the page graph", i)
		}
		if got := p.Ingestor().Emit(); got != before {
			t.Fatalf("bad batch %d dirtied the source graph", i)
		}
		if p.LastSeq() != seq {
			t.Fatalf("bad batch %d advanced the sequence", i)
		}
	}
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Delta{AddEdge(0, 1), TouchPage(2)}); err != nil {
		t.Fatalf("valid batch after rejections: %v", err)
	}
	if p.LastSeq() != seq+1 {
		t.Fatalf("sequence after recovery = %d, want %d", p.LastSeq(), seq+1)
	}
}

// TestRefreshSkipsOnTouchOnlyChurn: a batch of pure touches changes no
// state, so the next refresh must take every fast path — skipped SRSR
// solve and skipped baselines — and republish with pointer-identical
// score vectors (the delta publisher's wholesale-reuse witness).
func TestRefreshSkipsOnTouchOnlyChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pg := randomCorpus(rng, 10, 30, 80)
	store := server.NewStore(nil)
	p, err := NewPipeline(pg, Options{Spam: []int32{1, 2}, TopK: 3, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	first, st1, err := p.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if st1.SolveSkipped || st1.PageRankSkipped || st1.TrustRankSkipped {
		t.Fatalf("first refresh claimed warm skips: %+v", st1)
	}
	if _, err := p.Apply([]Delta{TouchPage(0), TouchPage(5), TouchPage(5)}); err != nil {
		t.Fatal(err)
	}
	second, st2, err := p.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !st2.SolveSkipped || !st2.PageRankSkipped || !st2.TrustRankSkipped {
		t.Fatalf("touch-only refresh ran solves: %+v", st2)
	}
	for _, algo := range first.Algos() {
		a, b := first.Set(algo).ScoresView(), second.Set(algo).ScoresView()
		if &a[0] != &b[0] {
			t.Fatalf("%s: touch-only refresh did not reuse the score vector", algo)
		}
	}
	if second.Version() != 2 || second.ParentVersion() != 1 {
		t.Fatalf("lineage = v%d parent %d, want v2 parent 1", second.Version(), second.ParentVersion())
	}
	if got := p.Stats(); got.Touches != 3 {
		t.Fatalf("touch count = %d, want 3", got.Touches)
	}
}

// TestWALReplayRestoresState: a pipeline with a write-ahead log is
// rebuilt from the base corpus plus the log alone, and must come back
// bitwise identical — graph counts, sequence number, and the emitted
// source graph.
func TestWALReplayRestoresState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomCorpus(rng, 12, 40, 120)
	dir := t.TempDir()
	opt := Options{Spam: []int32{0, 4}, TopK: 3, WALDir: dir}

	live, err := NewPipeline(base.Clone(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := live.Apply(randomDeltas(rng, live.Ingestor().PageGraph())); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := live.Refresh(); err != nil {
		t.Fatal(err)
	}

	recovered, err := NewPipeline(base.Clone(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.LastSeq() != live.LastSeq() {
		t.Fatalf("recovered seq %d, want %d", recovered.LastSeq(), live.LastSeq())
	}
	assertSameSourceGraph(t, recovered.Ingestor().Emit(), live.Ingestor().Emit())
	lp, rp := live.Ingestor().PageGraph(), recovered.Ingestor().PageGraph()
	if lp.NumPages() != rp.NumPages() || lp.NumLinks() != rp.NumLinks() || lp.NumSources() != rp.NumSources() {
		t.Fatalf("recovered page graph shape diverged")
	}
}

// TestBatchCodecRoundTrip pins the WAL wire format against every op.
func TestBatchCodecRoundTrip(t *testing.T) {
	b := Batch{Seq: 42, Deltas: []Delta{
		AddSource("αβ.example"), AddSource(""),
		AddPage(3), AddEdge(0, 7), RemoveEdge(7, 0), TouchPage(9),
	}}
	got, err := DecodeBatch(AppendBatch(nil, b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != b.Seq || !slices.Equal(got.Deltas, b.Deltas) {
		t.Fatalf("round trip diverged: %+v", got)
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("decoded empty buffer")
	}
	if _, err := DecodeBatch([]byte("XXXX12345678901234567890")); err == nil {
		t.Fatal("decoded bad magic")
	}
}
