package stream

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sourcerank/internal/linalg"
	"sourcerank/internal/rank"
	"sourcerank/internal/server"
)

// TestSlabRefreshBitwiseEqualsInHeap is the slab-backed refresh's
// equivalence suite: twin pipelines — one default, one rewriting slab
// generations under a residency budget and a tiny patch buffer (forcing
// multi-chunk rewrites) — consume identical delta batches, and after
// every refresh each published score set must match bit for bit. The
// committed generation file itself must equal a cold
// WriteSlabCSR(TransitionT(structure)) byte for byte, and the slab
// pipeline must never materialize the in-heap Mᵀ.
func TestSlabRefreshBitwiseEqualsInHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randomCorpus(rng, 18, 70, 240)
	spam := []int32{0, 3, 7}
	slabDir := t.TempDir()

	ref, err := NewPipeline(base.Clone(), Options{Spam: spam, TopK: 4, Name: "twin"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(base.Clone(), Options{
		Spam: spam, TopK: 4, Name: "twin",
		SlabDir: slabDir, MaxResident: 4096, SlabPatchEntries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var patched, copied int
	for step := 0; step < 10; step++ {
		deltas := randomDeltas(rng, ref.Ingestor().PageGraph())
		if _, err := ref.Apply(deltas); err != nil {
			t.Fatalf("step %d: ref apply: %v", step, err)
		}
		if _, err := p.Apply(deltas); err != nil {
			t.Fatalf("step %d: slab apply: %v", step, err)
		}
		wantSnap, _, err := ref.Refresh()
		if err != nil {
			t.Fatalf("step %d: ref refresh: %v", step, err)
		}
		gotSnap, st, err := p.Refresh()
		if err != nil {
			t.Fatalf("step %d: slab refresh: %v", step, err)
		}
		patched += st.SlabRowsPatched
		copied += st.SlabRowsCopied
		if p.mt != nil {
			t.Fatalf("step %d: slab pipeline materialized the in-heap Mᵀ", step)
		}
		for _, algo := range wantSnap.Algos() {
			a, b := gotSnap.Set(algo).ScoresView(), wantSnap.Set(algo).ScoresView()
			if len(a) != len(b) {
				t.Fatalf("step %d: %s: %d scores vs %d", step, algo, len(a), len(b))
			}
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("step %d: %s score %d diverges bitwise from in-heap refresh", step, algo, i)
				}
			}
		}

		// The committed generation must be byte-identical to a cold slab
		// write of the cold-rebuilt operand.
		want := filepath.Join(t.TempDir(), "ref.slab")
		if err := linalg.WriteSlabCSR(nil, want, rank.TransitionT(p.ing.Structure()), linalg.SlabFloat64); err != nil {
			t.Fatal(err)
		}
		wantBytes, err := os.ReadFile(want)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := os.ReadFile(p.slab.path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("step %d: generation %s differs from cold slab build", step, filepath.Base(p.slab.path))
		}

		// Superseded generations are reclaimed: exactly one file remains.
		entries, err := os.ReadDir(slabDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("step %d: %d generation files on disk, want 1", step, len(entries))
		}
	}
	if patched == 0 || copied == 0 {
		t.Fatalf("refresh accounting degenerate: patched=%d copied=%d (want both nonzero)", patched, copied)
	}
}

// TestSlabRefreshSkipsRewriteWhenCurrent pins the generation cache: a
// touch-only refresh keeps the mapped generation and reports zero
// patch/copy work.
func TestSlabRefreshSkipsRewriteWhenCurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pg := randomCorpus(rng, 8, 24, 60)
	p, err := NewPipeline(pg, Options{
		Spam: []int32{1}, TopK: 2, SlabDir: t.TempDir(), MaxResident: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, st1, err := p.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if st1.SlabRowsPatched == 0 {
		t.Fatal("first refresh patched no rows (cold generation build expected)")
	}
	gen := p.slab.path
	if _, err := p.Apply([]Delta{TouchPage(0), TouchPage(3)}); err != nil {
		t.Fatal(err)
	}
	_, st2, err := p.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if st2.SlabRowsPatched != 0 || st2.SlabRowsCopied != 0 {
		t.Fatalf("touch-only refresh rewrote the generation: %+v", st2)
	}
	if p.slab.path != gen {
		t.Fatalf("touch-only refresh swapped generations: %s -> %s", gen, p.slab.path)
	}
}

// TestSlabRefreshPrunesStaleGenerations: generation files surviving a
// crashed predecessor are reclaimed at construction.
func TestSlabRefreshPrunesStaleGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dir := t.TempDir()
	stale := filepath.Join(dir, fmt.Sprintf("%s99%s", slabGenPrefix, slabGenSuffix))
	if err := os.WriteFile(stale, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "unrelated.dat")
	if err := os.WriteFile(keep, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(randomCorpus(rng, 6, 18, 40), Options{
		Spam: []int32{0}, TopK: 2, SlabDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale generation survived pipeline construction")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("unrelated file was pruned: %v", err)
	}
	if _, _, err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
}

// TestSlabRefreshPublishes keeps the store path honest in slab mode:
// published snapshots carry every default algorithm and advance versions.
func TestSlabRefreshPublishes(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	store := server.NewStore(nil)
	p, err := NewPipeline(randomCorpus(rng, 10, 30, 90), Options{
		Spam: []int32{2}, TopK: 3, Store: store,
		SlabDir: t.TempDir(), MaxResident: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Apply(randomDeltas(rng, p.Ingestor().PageGraph())); err != nil {
			t.Fatal(err)
		}
		_, st, err := p.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		if st.Version != uint64(i+1) {
			t.Fatalf("refresh %d published version %d", i, st.Version)
		}
	}
	snap := store.Current()
	if snap == nil || len(snap.Algos()) != len(server.DefaultAlgos) {
		t.Fatalf("store snapshot missing algorithms: %v", snap.Algos())
	}
}
