package stream

import (
	"slices"
	"testing"

	"sourcerank/internal/pagegraph"
	"sourcerank/internal/source"
)

// fuzzBase is a small fixed corpus every fuzz iteration mutates: 4
// sources, 8 pages, a few links including a parallel pair.
func fuzzBase() *pagegraph.Graph {
	pg := pagegraph.New()
	for s := 0; s < 4; s++ {
		pg.AddSource("s" + string(rune('a'+s)) + ".example")
	}
	for p := 0; p < 8; p++ {
		pg.AddPage(pagegraph.SourceID(p % 4))
	}
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 3}, {4, 5}, {4, 5}, {6, 1}, {7, 4}} {
		pg.AddLink(e[0], e[1])
	}
	return pg
}

// FuzzApplyDeltas feeds arbitrary bytes through the WAL batch decoder
// into the ingestor. The invariants: decoding never panics; a batch that
// fails validation (out-of-range ids, remove-before-add, unknown ops)
// is rejected with the graphs untouched; and a batch that applies leaves
// the incremental source state bitwise identical to a cold
// re-aggregation of the mutated page graph — no input may corrupt the
// CSR state.
func FuzzApplyDeltas(f *testing.F) {
	f.Add(AppendBatch(nil, Batch{Seq: 1, Deltas: []Delta{
		AddSource("fuzz.example"), AddPage(4), AddEdge(8, 0), AddEdge(0, 8),
	}}))
	f.Add(AppendBatch(nil, Batch{Seq: 1, Deltas: []Delta{
		RemoveEdge(4, 5), RemoveEdge(4, 5), TouchPage(7), AddEdge(3, 3),
	}}))
	f.Add(AppendBatch(nil, Batch{Seq: 1, Deltas: []Delta{
		RemoveEdge(4, 5), RemoveEdge(4, 5), RemoveEdge(4, 5), // one more than exists
	}}))
	f.Add(AppendBatch(nil, Batch{Seq: 0, Deltas: []Delta{TouchPage(0)}})) // stale seq
	f.Add([]byte("SRB1garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Round trip: what decoded must re-encode to an equal batch.
		again, err := DecodeBatch(AppendBatch(nil, b))
		if err != nil || again.Seq != b.Seq || !slices.Equal(again.Deltas, b.Deltas) {
			t.Fatalf("re-encode round trip diverged (err=%v)", err)
		}

		pg := fuzzBase()
		ing, err := NewIngestor(pg, source.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pages, links, srcs := pg.NumPages(), pg.NumLinks(), pg.NumSources()
		before := ing.Emit()
		if err := ing.Apply(b); err != nil {
			// Rejected batches must be clean no-ops.
			if pg.NumPages() != pages || pg.NumLinks() != links || pg.NumSources() != srcs {
				t.Fatalf("rejected batch mutated the page graph: %v", err)
			}
			if ing.Emit() != before {
				t.Fatalf("rejected batch dirtied the source state: %v", err)
			}
			return
		}
		if err := pg.Validate(); err != nil {
			t.Fatalf("applied batch corrupted the page graph: %v", err)
		}
		got := ing.Emit()
		want, err := source.Build(pg, source.Options{})
		if err != nil {
			t.Fatalf("cold rebuild after apply: %v", err)
		}
		assertSameSourceGraph(t, got, want)
		if err := got.T.Validate(); err != nil {
			t.Fatalf("streamed transition CSR invalid: %v", err)
		}
	})
}
