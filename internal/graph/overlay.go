package graph

import (
	"fmt"
	"slices"
)

// Topology is the read-only view of a directed graph shared by the
// immutable Graph and the mutable Overlay. The solvers and the
// spam-proximity walk only ever iterate nodes and successor lists, so
// they accept either representation; a patched Overlay yields exactly
// the successor lists its compacted Graph would, which is what keeps the
// streaming pipeline's operators bitwise identical to a cold rebuild.
type Topology interface {
	NumNodes() int
	NumEdges() int64
	// Successors returns node u's sorted, duplicate-free successor list.
	// The slice aliases internal storage and must not be modified.
	Successors(u NodeID) []NodeID
}

var (
	_ Topology = (*Graph)(nil)
	_ Topology = (*Overlay)(nil)
)

// Overlay is a mutable row-replacement layer over an immutable CSR
// graph: whole successor rows are swapped out (dirty-row semantics — an
// incremental aggregator re-derives a full row and installs it), new
// nodes are appended, and everything else reads through to the base.
// Compact folds the patches into a fresh CSR when the patch set has
// grown past the point where map lookups and patch memory are worth
// carrying.
//
// Overlay is not safe for concurrent mutation; the streaming pipeline
// serializes writers and hands read-only views to solvers between
// batches.
type Overlay struct {
	base  *Graph
	rows  map[NodeID][]NodeID // replaced successor rows, sorted + deduped
	n     int                 // >= base.n when nodes were appended
	edges int64
}

// NewOverlay returns an overlay with no patches over base.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{
		base:  base,
		rows:  make(map[NodeID][]NodeID),
		n:     base.NumNodes(),
		edges: base.NumEdges(),
	}
}

// NumNodes returns the node count including appended nodes.
func (o *Overlay) NumNodes() int { return o.n }

// NumEdges returns the edge count reflecting every patched row.
func (o *Overlay) NumEdges() int64 { return o.edges }

// PatchedRows reports how many rows currently diverge from the base.
func (o *Overlay) PatchedRows() int { return len(o.rows) }

// AddNodes appends k nodes with empty successor rows and returns the ID
// of the first one. Appended rows read as empty until SetRow patches
// them.
func (o *Overlay) AddNodes(k int) NodeID {
	first := NodeID(o.n)
	o.n += k
	return first
}

// Successors returns node u's successor list: the patched row if one is
// installed, the base row for original nodes, and an empty row for
// appended nodes.
func (o *Overlay) Successors(u NodeID) []NodeID {
	if row, ok := o.rows[u]; ok {
		return row
	}
	if int(u) < o.base.NumNodes() {
		return o.base.Successors(u)
	}
	return nil
}

// SetRow replaces node u's successor list. succ must be strictly
// increasing (sorted, duplicate-free) with every target in range — the
// same invariant CSR rows carry — and is copied. Installing a row equal
// to the base row removes the patch instead of shadowing it.
func (o *Overlay) SetRow(u NodeID, succ []NodeID) error {
	if u < 0 || int(u) >= o.n {
		return fmt.Errorf("%w: SetRow(%d) with %d nodes", ErrCorrupt, u, o.n)
	}
	for i, v := range succ {
		if v < 0 || int(v) >= o.n {
			return fmt.Errorf("%w: successor %d out of range [0,%d)", ErrCorrupt, v, o.n)
		}
		if i > 0 && succ[i-1] >= v {
			return fmt.Errorf("%w: successors of %d not strictly increasing", ErrCorrupt, u)
		}
	}
	o.edges += int64(len(succ)) - int64(len(o.Successors(u)))
	if int(u) < o.base.NumNodes() && slices.Equal(succ, o.base.Successors(u)) {
		delete(o.rows, u)
		return nil
	}
	o.rows[u] = slices.Clone(succ)
	return nil
}

// Compact materializes the overlay as a fresh immutable Graph and
// resets the overlay onto it (no patches, same topology). Rows are
// already sorted, so assembly is two linear passes with no edge sort.
func (o *Overlay) Compact() *Graph {
	g := &Graph{
		n:      o.n,
		rowPtr: make([]int64, o.n+1),
		succ:   make([]NodeID, 0, o.edges),
	}
	for u := 0; u < o.n; u++ {
		row := o.Successors(NodeID(u))
		g.succ = append(g.succ, row...)
		g.rowPtr[u+1] = int64(len(g.succ))
	}
	o.base = g
	o.rows = make(map[NodeID][]NodeID)
	return g
}

// Materialized reports whether the overlay currently equals its base
// graph (no patches, no appended nodes), in which case Base may be used
// directly.
func (o *Overlay) Materialized() bool {
	return len(o.rows) == 0 && o.n == o.base.NumNodes()
}

// Base returns the graph the overlay reads through to. Note rows patched
// since the last Compact are not visible in it.
func (o *Overlay) Base() *Graph { return o.base }
