package graph

import (
	"math/rand"
	"slices"
	"testing"
)

func buildGraph(t *testing.T, n int, edges [][2]NodeID) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestOverlayReadThrough(t *testing.T) {
	g := buildGraph(t, 4, [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {3, 3}})
	o := NewOverlay(g)
	if o.NumNodes() != 4 || o.NumEdges() != 4 {
		t.Fatalf("overlay dims = (%d, %d), want (4, 4)", o.NumNodes(), o.NumEdges())
	}
	if !o.Materialized() {
		t.Fatal("fresh overlay should be materialized")
	}
	for u := 0; u < 4; u++ {
		if !slices.Equal(o.Successors(NodeID(u)), g.Successors(NodeID(u))) {
			t.Fatalf("row %d differs from base", u)
		}
	}
}

func TestOverlaySetRowAndCompact(t *testing.T) {
	g := buildGraph(t, 4, [][2]NodeID{{0, 1}, {0, 2}, {1, 3}})
	o := NewOverlay(g)
	if err := o.SetRow(0, []NodeID{3}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	if err := o.SetRow(2, []NodeID{0, 1, 3}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	first := o.AddNodes(2)
	if first != 4 || o.NumNodes() != 6 {
		t.Fatalf("AddNodes: first=%d n=%d", first, o.NumNodes())
	}
	if err := o.SetRow(5, []NodeID{0, 4}); err != nil {
		t.Fatalf("SetRow appended: %v", err)
	}
	if got := o.NumEdges(); got != 7 {
		t.Fatalf("NumEdges = %d, want 7", got)
	}
	if o.PatchedRows() != 3 {
		t.Fatalf("PatchedRows = %d, want 3", o.PatchedRows())
	}

	c := o.Compact()
	if err := c.Validate(); err != nil {
		t.Fatalf("compacted Validate: %v", err)
	}
	want := [][]NodeID{{3}, {3}, {0, 1, 3}, nil, nil, {0, 4}}
	for u, w := range want {
		if !slices.Equal(c.Successors(NodeID(u)), w) {
			t.Fatalf("compacted row %d = %v, want %v", u, c.Successors(NodeID(u)), w)
		}
	}
	if !o.Materialized() || o.Base() != c {
		t.Fatal("overlay should reset onto compacted graph")
	}
}

func TestOverlaySetRowEqualToBaseDropsPatch(t *testing.T) {
	g := buildGraph(t, 3, [][2]NodeID{{0, 1}, {0, 2}})
	o := NewOverlay(g)
	if err := o.SetRow(0, []NodeID{1}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	if o.PatchedRows() != 1 || o.NumEdges() != 1 {
		t.Fatalf("after patch: rows=%d edges=%d", o.PatchedRows(), o.NumEdges())
	}
	if err := o.SetRow(0, []NodeID{1, 2}); err != nil {
		t.Fatalf("SetRow back: %v", err)
	}
	if o.PatchedRows() != 0 || o.NumEdges() != 2 || !o.Materialized() {
		t.Fatalf("restoring base row should drop the patch: rows=%d edges=%d", o.PatchedRows(), o.NumEdges())
	}
}

func TestOverlaySetRowRejectsInvalid(t *testing.T) {
	g := buildGraph(t, 3, [][2]NodeID{{0, 1}})
	o := NewOverlay(g)
	cases := []struct {
		name string
		u    NodeID
		row  []NodeID
	}{
		{"row out of range", 3, []NodeID{0}},
		{"negative row", -1, []NodeID{0}},
		{"target out of range", 0, []NodeID{3}},
		{"negative target", 0, []NodeID{-1}},
		{"unsorted", 0, []NodeID{2, 1}},
		{"duplicate", 0, []NodeID{1, 1}},
	}
	for _, c := range cases {
		if err := o.SetRow(c.u, c.row); err == nil {
			t.Errorf("%s: SetRow accepted invalid input", c.name)
		}
	}
	if o.PatchedRows() != 0 || o.NumEdges() != 1 {
		t.Fatalf("rejected SetRow mutated overlay: rows=%d edges=%d", o.PatchedRows(), o.NumEdges())
	}
}

// TestOverlayMatchesRebuild drives random row replacements and node
// growth through an overlay and checks every read, plus the final
// compaction, against a from-scratch rebuild of the same topology.
func TestOverlayMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 20
	rows := make([][]NodeID, n)
	var base *Graph
	{
		b := NewBuilder(n)
		for u := 0; u < n; u++ {
			deg := rng.Intn(4)
			seen := map[NodeID]bool{}
			for j := 0; j < deg; j++ {
				v := NodeID(rng.Intn(n))
				if !seen[v] {
					seen[v] = true
					b.AddEdge(NodeID(u), v)
					rows[u] = append(rows[u], v)
				}
			}
			slices.Sort(rows[u])
		}
		base = b.Build()
	}
	o := NewOverlay(base)
	for step := 0; step < 200; step++ {
		if rng.Intn(10) == 0 {
			o.AddNodes(1)
			rows = append(rows, nil)
			n++
			continue
		}
		u := NodeID(rng.Intn(n))
		deg := rng.Intn(5)
		seen := map[NodeID]bool{}
		var row []NodeID
		for j := 0; j < deg; j++ {
			v := NodeID(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				row = append(row, v)
			}
		}
		slices.Sort(row)
		if err := o.SetRow(u, row); err != nil {
			t.Fatalf("step %d SetRow: %v", step, err)
		}
		rows[u] = row
		// Occasionally compact mid-stream; reads must be unaffected.
		if rng.Intn(40) == 0 {
			o.Compact()
		}
	}
	var wantEdges int64
	for u := 0; u < n; u++ {
		if !slices.Equal(o.Successors(NodeID(u)), rows[u]) {
			t.Fatalf("row %d = %v, want %v", u, o.Successors(NodeID(u)), rows[u])
		}
		wantEdges += int64(len(rows[u]))
	}
	if o.NumEdges() != wantEdges {
		t.Fatalf("NumEdges = %d, want %d", o.NumEdges(), wantEdges)
	}
	c := o.Compact()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for u := 0; u < n; u++ {
		if !slices.Equal(c.Successors(NodeID(u)), rows[u]) {
			t.Fatalf("compacted row %d mismatch", u)
		}
	}
}
