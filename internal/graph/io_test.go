package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIORoundTrip(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1, 2}, {2}, {0}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d", got.NumNodes(), got.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		a, b := g.Successors(NodeID(u)), got.Successors(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d successor %d changed", u, i)
			}
		}
	}
}

func TestIOEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Errorf("empty graph round-trip: %d/%d", got.NumNodes(), got.NumEdges())
	}
}

func TestReadFromBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	_, err := ReadFrom(buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadFromTruncated(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {0}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 4, 8, 12, 20, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, err := ReadFrom(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadFromCorruptedSuccessor(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {0}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip the last successor ID to an out-of-range value.
	raw[len(raw)-1] = 0xFF
	if _, err := ReadFrom(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt successor: err = %v, want ErrCorrupt", err)
	}
}

// Property: serialize/deserialize is the identity on random graphs.
func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(400))
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < n; u++ {
			a, b := g.Successors(NodeID(u)), got.Successors(NodeID(u))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
