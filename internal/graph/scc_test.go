package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCSingleCycle(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {2}, {0}})
	r := SCC(g)
	if r.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", r.NumComponents())
	}
	if r.Sizes[0] != 3 {
		t.Errorf("size = %d, want 3", r.Sizes[0])
	}
}

func TestSCCChain(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {2}, {}})
	r := SCC(g)
	if r.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3", r.NumComponents())
	}
	// Reverse topological order: edges point from higher component IDs to
	// lower ones, so comp(0) > comp(1) > comp(2).
	if !(r.Comp[0] > r.Comp[1] && r.Comp[1] > r.Comp[2]) {
		t.Errorf("component order wrong: %v", r.Comp)
	}
}

func TestSCCTwoCycles(t *testing.T) {
	// 0<->1 and 2<->3, bridge 1->2.
	g := FromAdjacency([][]NodeID{{1}, {0, 2}, {3}, {2}})
	r := SCC(g)
	if r.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", r.NumComponents())
	}
	if r.Comp[0] != r.Comp[1] || r.Comp[2] != r.Comp[3] || r.Comp[0] == r.Comp[2] {
		t.Errorf("grouping wrong: %v", r.Comp)
	}
}

func TestSCCEmptyAndSingle(t *testing.T) {
	r := SCC(NewBuilder(0).Build())
	if r.NumComponents() != 0 {
		t.Errorf("empty graph has %d components", r.NumComponents())
	}
	if c, s := r.Largest(); c != -1 || s != 0 {
		t.Errorf("Largest on empty = %d/%d", c, s)
	}
	r = SCC(NewBuilder(1).Build())
	if r.NumComponents() != 1 || r.Sizes[0] != 1 {
		t.Errorf("singleton: %+v", r)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 200k-node chain would overflow a recursive Tarjan.
	const n = 200000
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	r := SCC(b.Build())
	if r.NumComponents() != n {
		t.Fatalf("components = %d, want %d", r.NumComponents(), n)
	}
}

func TestBowtieClassic(t *testing.T) {
	// in(0) -> core(1<->2) -> out(3); node 4 disconnected.
	g := FromAdjacency([][]NodeID{{1}, {2}, {1, 3}, {}, {}})
	bt := BowtieDecompose(g)
	if bt.Region[0] != In {
		t.Errorf("node 0 = %v, want in", bt.Region[0])
	}
	if bt.Region[1] != Core || bt.Region[2] != Core {
		t.Errorf("core wrong: %v %v", bt.Region[1], bt.Region[2])
	}
	if bt.Region[3] != Out {
		t.Errorf("node 3 = %v, want out", bt.Region[3])
	}
	if bt.Region[4] != Disconnected {
		t.Errorf("node 4 = %v, want disconnected", bt.Region[4])
	}
	if bt.Counts[Core] != 2 || bt.Counts[In] != 1 || bt.Counts[Out] != 1 || bt.Counts[Disconnected] != 1 {
		t.Errorf("counts = %v", bt.Counts)
	}
}

func TestBowtieEmpty(t *testing.T) {
	if bt := BowtieDecompose(NewBuilder(0).Build()); bt != nil {
		t.Error("empty graph should return nil")
	}
}

func TestBowtieRegionString(t *testing.T) {
	for _, r := range []BowtieRegion{Core, In, Out, Disconnected} {
		if r.String() == "" {
			t.Errorf("empty string for region %d", r)
		}
	}
}

func TestShortestHops(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {2}, {}, {}})
	d := ShortestHops(g, 0)
	want := []int32{0, 1, 2, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	// Out-of-range source: all -1.
	d = ShortestHops(g, -1)
	for i := range d {
		if d[i] != -1 {
			t.Errorf("bad-source dist[%d] = %d", i, d[i])
		}
	}
}

// bruteSCC computes components by pairwise mutual reachability.
func bruteSCC(g *Graph) [][]bool {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for v := 0; v < n; v++ {
		reach[v] = reachable(g, []NodeID{NodeID(v)})
	}
	same := make([][]bool, n)
	for i := 0; i < n; i++ {
		same[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			same[i][j] = reach[i][j] && reach[j][i]
		}
	}
	return same
}

// Property: Tarjan agrees with brute-force mutual reachability.
func TestQuickSCCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(80))
		r := SCC(g)
		same := bruteSCC(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (r.Comp[i] == r.Comp[j]) != same[i][j] {
					return false
				}
			}
		}
		// Sizes must sum to n.
		var total int32
		for _, s := range r.Sizes {
			total += s
		}
		return int(total) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: bowtie regions partition the node set and the core is the
// largest SCC.
func TestQuickBowtiePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(100))
		bt := BowtieDecompose(g)
		total := 0
		for _, c := range bt.Counts {
			total += c
		}
		if total != n {
			return false
		}
		_, largest := SCC(g).Largest()
		return bt.Counts[Core] == int(largest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
