// Package graph provides the directed-graph substrate shared by the page
// graph and the source graph: a compact immutable adjacency structure in
// compressed-sparse-row form, a mutable builder, transposition, degree
// statistics, and structural validation.
//
// Node identifiers are dense int32 indices in [0, N); the higher layers
// (internal/pagegraph, internal/source) maintain the mapping from URLs and
// hosts to indices.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node in a graph. IDs are dense: a graph with N nodes
// uses exactly the IDs 0..N-1.
type NodeID = int32

// Graph is an immutable directed graph in CSR form. Successor lists are
// sorted and duplicate-free.
type Graph struct {
	n      int
	rowPtr []int64
	succ   []NodeID
}

// ErrCorrupt reports a structurally invalid graph encoding.
var ErrCorrupt = errors.New("graph: corrupt structure")

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.succ)) }

// OutDegree returns the out-degree of node u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.rowPtr[u+1] - g.rowPtr[u])
}

// Successors returns the sorted successor list of u. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Successors(u NodeID) []NodeID {
	return g.succ[g.rowPtr[u]:g.rowPtr[u+1]]
}

// HasEdge reports whether the edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	s := g.Successors(u)
	k := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return k < len(s) && s[k] == v
}

// Transpose returns the graph with every edge reversed. The paper's
// spam-proximity computation (§5) runs an inverse-PageRank walk on exactly
// this reversal of the source graph.
func (g *Graph) Transpose() *Graph {
	t := &Graph{
		n:      g.n,
		rowPtr: make([]int64, g.n+1),
		succ:   make([]NodeID, len(g.succ)),
	}
	for _, v := range g.succ {
		t.rowPtr[v+1]++
	}
	for i := 0; i < g.n; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int64, g.n)
	copy(next, t.rowPtr[:g.n])
	for u := 0; u < g.n; u++ {
		for _, v := range g.Successors(NodeID(u)) {
			t.succ[next[v]] = NodeID(u)
			next[v]++
		}
	}
	// Each reversed successor list was filled in increasing source order,
	// so it is already sorted.
	return t
}

// Validate checks structural invariants and returns a wrapped ErrCorrupt
// on failure.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("%w: negative node count %d", ErrCorrupt, g.n)
	}
	if len(g.rowPtr) != g.n+1 {
		return fmt.Errorf("%w: rowPtr length %d, want %d", ErrCorrupt, len(g.rowPtr), g.n+1)
	}
	if g.rowPtr[0] != 0 || int(g.rowPtr[g.n]) != len(g.succ) {
		return fmt.Errorf("%w: rowPtr bounds [%d, %d] vs %d edges", ErrCorrupt, g.rowPtr[0], g.rowPtr[g.n], len(g.succ))
	}
	for u := 0; u < g.n; u++ {
		if g.rowPtr[u] > g.rowPtr[u+1] {
			return fmt.Errorf("%w: node %d has negative extent", ErrCorrupt, u)
		}
		s := g.Successors(NodeID(u))
		for i, v := range s {
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("%w: node %d successor %d out of range", ErrCorrupt, u, v)
			}
			if i > 0 && s[i-1] >= v {
				return fmt.Errorf("%w: node %d successors not strictly increasing", ErrCorrupt, u)
			}
		}
	}
	return nil
}

// DegreeStats summarizes a graph's degree distribution.
type DegreeStats struct {
	Nodes       int
	Edges       int64
	MaxOut      int
	MaxIn       int
	Dangling    int     // nodes with out-degree 0
	Isolated    int     // nodes with in-degree 0 and out-degree 0
	MeanOut     float64 // Edges / Nodes
	SelfLoops   int64
	Reciprocal  int64 // edges (u,v) with v!=u where (v,u) also exists
	InDegreeZer int   // nodes with in-degree 0
}

// Stats computes degree statistics in a single pass plus a transpose-free
// in-degree count.
func (g *Graph) Stats() DegreeStats {
	st := DegreeStats{Nodes: g.n, Edges: g.NumEdges()}
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		d := g.OutDegree(NodeID(u))
		if d > st.MaxOut {
			st.MaxOut = d
		}
		if d == 0 {
			st.Dangling++
		}
		for _, v := range g.Successors(NodeID(u)) {
			indeg[v]++
			if v == NodeID(u) {
				st.SelfLoops++
			} else if g.HasEdge(v, NodeID(u)) {
				st.Reciprocal++
			}
		}
	}
	for u := 0; u < g.n; u++ {
		if indeg[u] > st.MaxIn {
			st.MaxIn = indeg[u]
		}
		if indeg[u] == 0 {
			st.InDegreeZer++
			if g.OutDegree(NodeID(u)) == 0 {
				st.Isolated++
			}
		}
	}
	if g.n > 0 {
		st.MeanOut = float64(st.Edges) / float64(g.n)
	}
	return st
}

// EdgeCount is a (node, degree) pair used by degree-histogram helpers.
type EdgeCount struct {
	Node   NodeID
	Degree int
}

// TopOutDegrees returns the k nodes with the largest out-degree, in
// decreasing order (ties by smaller ID first).
func (g *Graph) TopOutDegrees(k int) []EdgeCount {
	all := make([]EdgeCount, g.n)
	for u := 0; u < g.n; u++ {
		all[u] = EdgeCount{NodeID(u), g.OutDegree(NodeID(u))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Degree != all[j].Degree {
			return all[i].Degree > all[j].Degree
		}
		return all[i].Node < all[j].Node
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
