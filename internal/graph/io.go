package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: magic, version, node count, edge count, then for each
// node its out-degree followed by its successor IDs as raw little-endian
// int32s. The compressed variant lives in internal/webgraph; this plain
// encoding exists for debugging and as the interchange baseline.

const (
	ioMagic   = 0x53524B47 // "SRKG"
	ioVersion = 1
)

// WriteTo serializes g in the plain binary format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put32 := func(x uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], x)
		n, err := bw.Write(buf[:])
		written += int64(n)
		return err
	}
	put64 := func(x uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], x)
		n, err := bw.Write(buf[:])
		written += int64(n)
		return err
	}
	if err := put32(ioMagic); err != nil {
		return written, err
	}
	if err := put32(ioVersion); err != nil {
		return written, err
	}
	if err := put64(uint64(g.n)); err != nil {
		return written, err
	}
	if err := put64(uint64(len(g.succ))); err != nil {
		return written, err
	}
	for u := 0; u < g.n; u++ {
		s := g.Successors(NodeID(u))
		if err := put32(uint32(len(s))); err != nil {
			return written, err
		}
		for _, v := range s {
			if err := put32(uint32(v)); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadFrom deserializes a graph written by WriteTo, validating structure
// as it goes so corrupted inputs surface as wrapped ErrCorrupt errors
// rather than panics.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	get64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != ioMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	ver, err := get32()
	if err != nil {
		return nil, fmt.Errorf("graph: reading version: %w", err)
	}
	if ver != ioVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	n64, err := get64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	edges64, err := get64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	const maxNodes = 1 << 31
	if n64 > maxNodes || edges64 > (1<<40) {
		return nil, fmt.Errorf("%w: implausible sizes n=%d edges=%d", ErrCorrupt, n64, edges64)
	}
	n := int(n64)
	g := &Graph{
		n:      n,
		rowPtr: make([]int64, n+1),
		succ:   make([]NodeID, 0, int(edges64)),
	}
	for u := 0; u < n; u++ {
		deg, err := get32()
		if err != nil {
			return nil, fmt.Errorf("graph: reading degree of node %d: %w", u, err)
		}
		if int64(len(g.succ))+int64(deg) > int64(edges64) {
			return nil, fmt.Errorf("%w: degrees exceed declared edge count", ErrCorrupt)
		}
		g.rowPtr[u+1] = g.rowPtr[u] + int64(deg)
		for k := uint32(0); k < deg; k++ {
			v, err := get32()
			if err != nil {
				return nil, fmt.Errorf("graph: reading successor of node %d: %w", u, err)
			}
			g.succ = append(g.succ, NodeID(v))
		}
	}
	if int64(len(g.succ)) != int64(edges64) {
		return nil, fmt.Errorf("%w: edge count mismatch: declared %d, read %d", ErrCorrupt, edges64, len(g.succ))
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
