package graph

// Strongly connected components via Tarjan's algorithm (iterative, so
// million-node web graphs don't overflow the goroutine stack) plus the
// classic "bowtie" decomposition of a web graph around its largest SCC.

// SCCResult maps every node to a component and records component sizes.
// Components are numbered in reverse topological order of the condensation
// (Tarjan's output order): edges between components always point from a
// higher-numbered component to a lower-numbered one.
type SCCResult struct {
	// Comp[v] is the component ID of node v.
	Comp []int32
	// Sizes[c] is the number of nodes in component c.
	Sizes []int32
}

// NumComponents returns the number of strongly connected components.
func (r *SCCResult) NumComponents() int { return len(r.Sizes) }

// Largest returns the ID of the largest component (ties to the smaller
// ID) and its size; (-1, 0) for an empty graph.
func (r *SCCResult) Largest() (int32, int32) {
	best, bestSize := int32(-1), int32(0)
	for c, s := range r.Sizes {
		if s > bestSize {
			best, bestSize = int32(c), s
		}
	}
	return best, bestSize
}

// SCC computes the strongly connected components of g.
func SCC(g *Graph) *SCCResult {
	n := g.NumNodes()
	res := &SCCResult{Comp: make([]int32, n)}
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []NodeID
	var next int32 = 0

	// Iterative Tarjan: each frame tracks the node and the position in
	// its successor list.
	type frame struct {
		v   NodeID
		idx int
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{NodeID(root), 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, NodeID(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succ := g.Successors(f.v)
			if f.idx < len(succ) {
				w := succ[f.idx]
				f.idx++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// All successors processed: close the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is the root of a component: pop it off the stack.
				comp := int32(len(res.Sizes))
				var size int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					res.Comp[w] = comp
					size++
					if w == v {
						break
					}
				}
				res.Sizes = append(res.Sizes, size)
			}
		}
	}
	return res
}

// BowtieRegion classifies a node's position relative to the largest SCC,
// following the Broder et al. bowtie model of the Web.
type BowtieRegion int8

const (
	// Core is the largest strongly connected component.
	Core BowtieRegion = iota
	// In reaches the core but is not reachable from it.
	In
	// Out is reachable from the core but does not reach it.
	Out
	// Disconnected neither reaches nor is reached by the core
	// (tendrils, tubes, and islands are lumped together).
	Disconnected
)

// String implements fmt.Stringer.
func (r BowtieRegion) String() string {
	switch r {
	case Core:
		return "core"
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return "disconnected"
	}
}

// Bowtie holds the bowtie decomposition of a graph.
type Bowtie struct {
	Region []BowtieRegion
	Counts [4]int
}

// BowtieDecompose computes the bowtie structure around the largest SCC.
// It returns nil for an empty graph.
func BowtieDecompose(g *Graph) *Bowtie {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	scc := SCC(g)
	coreID, _ := scc.Largest()

	// Forward reachability from the core gives Core ∪ Out; backward
	// reachability gives Core ∪ In.
	seeds := make([]NodeID, 0)
	for v := 0; v < n; v++ {
		if scc.Comp[v] == coreID {
			seeds = append(seeds, NodeID(v))
		}
	}
	fwd := reachable(g, seeds)
	bwd := reachable(g.Transpose(), seeds)

	bt := &Bowtie{Region: make([]BowtieRegion, n)}
	for v := 0; v < n; v++ {
		var r BowtieRegion
		switch {
		case scc.Comp[v] == coreID:
			r = Core
		case bwd[v]: // reaches the core
			r = In
		case fwd[v]: // reached from the core
			r = Out
		default:
			r = Disconnected
		}
		bt.Region[v] = r
		bt.Counts[r]++
	}
	return bt
}

// reachable marks every node reachable from the seed set by BFS.
func reachable(g *Graph, seeds []NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	queue := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Successors(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// ShortestHops returns the BFS hop distance from src to every node
// (-1 when unreachable).
func ShortestHops(g *Graph, src NodeID) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || int(src) >= n {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Successors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
