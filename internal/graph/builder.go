package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It
// deduplicates parallel edges and sorts successor lists at Build time.
// The zero value is ready to use.
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v NodeID }

// NewBuilder returns a builder pre-sized for n nodes. Nodes can still be
// grown later with AddNode or by adding edges with larger endpoints.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// NumEdgesAdded returns the number of AddEdge calls so far (before
// deduplication).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// AddNode appends a fresh node and returns its ID.
func (b *Builder) AddNode() NodeID {
	id := NodeID(b.n)
	b.n++
	return id
}

// Grow ensures the builder has at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge records the directed edge (u, v), growing the node count if
// either endpoint is new. Negative IDs panic.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative node id (%d, %d)", u, v))
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, edge{u, v})
}

// Build produces the immutable graph. The builder remains usable; calling
// Build again after more AddEdge calls produces a new snapshot.
func (b *Builder) Build() *Graph {
	es := make([]edge, len(b.edges))
	copy(es, b.edges)
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	g := &Graph{
		n:      b.n,
		rowPtr: make([]int64, b.n+1),
	}
	g.succ = make([]NodeID, 0, len(es))
	for i := 0; i < len(es); {
		j := i + 1
		for j < len(es) && es[j] == es[i] {
			j++ // skip duplicates
		}
		g.succ = append(g.succ, es[i].v)
		g.rowPtr[es[i].u+1]++
		i = j
	}
	for i := 0; i < b.n; i++ {
		g.rowPtr[i+1] += g.rowPtr[i]
	}
	return g
}

// FromParts assembles a Graph directly from CSR arrays, skipping the
// Builder's sort-and-dedup pass. rowPtr must have n+1 monotone entries
// with rowPtr[0] == 0 and rowPtr[n] == len(succ); each row of succ must
// already be strictly increasing and in range — producers that decode or
// merge sorted adjacency (the parallel webgraph decoder) guarantee this
// per element. The cheap structural invariants are checked here; call
// Validate for the full per-edge check. The slices are retained, not
// copied.
func FromParts(n int, rowPtr []int64, succ []NodeID) (*Graph, error) {
	if n < 0 || len(rowPtr) != n+1 {
		return nil, fmt.Errorf("%w: rowPtr length %d, want %d", ErrCorrupt, len(rowPtr), n+1)
	}
	if rowPtr[0] != 0 || int(rowPtr[n]) != len(succ) {
		return nil, fmt.Errorf("%w: rowPtr bounds [%d, %d] vs %d edges", ErrCorrupt, rowPtr[0], rowPtr[n], len(succ))
	}
	for u := 0; u < n; u++ {
		if rowPtr[u] > rowPtr[u+1] {
			return nil, fmt.Errorf("%w: node %d has negative extent", ErrCorrupt, u)
		}
	}
	return &Graph{n: n, rowPtr: rowPtr, succ: succ}, nil
}

// FromAdjacency builds a graph from an explicit adjacency list, useful in
// tests. Row u of adj lists the successors of node u; duplicate and
// unsorted entries are tolerated.
func FromAdjacency(adj [][]NodeID) *Graph {
	b := NewBuilder(len(adj))
	for u, succ := range adj {
		for _, v := range succ {
			b.AddEdge(NodeID(u), v)
		}
	}
	return b.Build()
}

// Subgraph returns the induced subgraph on keep, along with the mapping
// from old IDs to new IDs (-1 for dropped nodes). Nodes listed twice are
// kept once; order of keep determines the new IDs.
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID) {
	remap := make([]NodeID, g.n)
	for i := range remap {
		remap[i] = -1
	}
	next := NodeID(0)
	for _, u := range keep {
		if remap[u] == -1 {
			remap[u] = next
			next++
		}
	}
	b := NewBuilder(int(next))
	for u := 0; u < g.n; u++ {
		nu := remap[u]
		if nu == -1 {
			continue
		}
		for _, v := range g.Successors(NodeID(u)) {
			if nv := remap[v]; nv != -1 {
				b.AddEdge(nu, nv)
			}
		}
	}
	return b.Build(), remap
}
