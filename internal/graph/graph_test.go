package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(0)
	u := b.AddNode()
	v := b.AddNode()
	b.AddEdge(u, v)
	b.AddEdge(u, v) // duplicate
	g := b.Build()
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", g.NumNodes())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 after dedup", g.NumEdges())
	}
	if !g.HasEdge(u, v) || g.HasEdge(v, u) {
		t.Error("edge direction wrong")
	}
}

func TestBuilderGrowsOnEdge(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(3, 7)
	g := b.Build()
	if g.NumNodes() != 8 {
		t.Errorf("nodes = %d, want 8", g.NumNodes())
	}
	if g.OutDegree(3) != 1 || g.OutDegree(0) != 0 {
		t.Error("degrees wrong after implicit growth")
	}
}

func TestBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative ID")
		}
	}()
	NewBuilder(1).AddEdge(-1, 0)
}

func TestSuccessorsSorted(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	s := g.Successors(0)
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("successors not sorted: %v", s)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]NodeID{
		{1, 2},
		{2},
		{},
	})
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("shape %d/%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) {
		t.Error("edges wrong")
	}
}

func TestTranspose(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1}, {2}, {0, 1}})
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			if g.HasEdge(u, v) != tr.HasEdge(v, u) {
				t.Errorf("edge (%d,%d) not mirrored", u, v)
			}
		}
	}
}

func TestStats(t *testing.T) {
	g := FromAdjacency([][]NodeID{
		{0, 1}, // self loop + edge to 1
		{0},    // reciprocal with 0->1
		{},     // dangling
		{},     // isolated? node 3 has no in edges either
	})
	st := g.Stats()
	if st.Nodes != 4 || st.Edges != 3 {
		t.Fatalf("nodes/edges = %d/%d", st.Nodes, st.Edges)
	}
	if st.SelfLoops != 1 {
		t.Errorf("self loops = %d, want 1", st.SelfLoops)
	}
	if st.Reciprocal != 2 { // (0,1) and (1,0) each counted
		t.Errorf("reciprocal = %d, want 2", st.Reciprocal)
	}
	if st.Dangling != 2 {
		t.Errorf("dangling = %d, want 2", st.Dangling)
	}
	if st.Isolated != 2 { // nodes 2 and 3: no in, no out
		t.Errorf("isolated = %d, want 2", st.Isolated)
	}
	if st.MaxOut != 2 || st.MaxIn != 2 {
		t.Errorf("max degrees = %d/%d", st.MaxOut, st.MaxIn)
	}
}

func TestSubgraph(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1, 2}, {2}, {0}})
	sub, remap := g.Subgraph([]NodeID{0, 2})
	if sub.NumNodes() != 2 {
		t.Fatalf("nodes = %d", sub.NumNodes())
	}
	if remap[1] != -1 {
		t.Error("dropped node not marked -1")
	}
	// Edges 0->2 and 2->0 survive as 0->1, 1->0.
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 0) {
		t.Errorf("induced edges wrong")
	}
	if sub.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", sub.NumEdges())
	}
}

func TestSubgraphDuplicateKeep(t *testing.T) {
	g := line(3)
	sub, _ := g.Subgraph([]NodeID{1, 1, 2})
	if sub.NumNodes() != 2 {
		t.Errorf("nodes = %d, want 2", sub.NumNodes())
	}
}

func TestTopOutDegrees(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1, 2, 3}, {0}, {}, {0, 1}})
	top := g.TopOutDegrees(2)
	if len(top) != 2 || top[0].Node != 0 || top[0].Degree != 3 {
		t.Fatalf("top = %+v", top)
	}
	if top[1].Node != 3 || top[1].Degree != 2 {
		t.Fatalf("top = %+v", top)
	}
	all := g.TopOutDegrees(100)
	if len(all) != 4 {
		t.Errorf("clamp failed: %d", len(all))
	}
}

func randomGraph(rng *rand.Rand, n, edges int) *Graph {
	b := NewBuilder(n)
	for k := 0; k < edges; k++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// Property: any built graph validates, and transpose preserves edge count
// and degree totals.
func TestQuickBuildValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(300))
		if g.Validate() != nil {
			return false
		}
		tr := g.Transpose()
		if tr.Validate() != nil {
			return false
		}
		if tr.NumEdges() != g.NumEdges() {
			return false
		}
		// In-degree of u in g equals out-degree of u in transpose.
		indeg := make([]int, n)
		for u := 0; u < n; u++ {
			for _, v := range g.Successors(NodeID(u)) {
				indeg[v]++
			}
		}
		for u := 0; u < n; u++ {
			if tr.OutDegree(NodeID(u)) != indeg[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: double transpose is the identity.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(200))
		tt := g.Transpose().Transpose()
		if tt.NumNodes() != g.NumNodes() || tt.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < n; u++ {
			a, b := g.Successors(NodeID(u)), tt.Successors(NodeID(u))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
