// Package bench holds the paper-level benchmark harness: one benchmark
// per table and figure of the evaluation (regenerating the artifact each
// iteration) plus microbenchmarks for the computational kernels the
// system is built on (parallel SpMV, the power-method solve, source-graph
// construction, graph compression, and spam-proximity propagation).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package bench

import (
	"io"
	"testing"

	"sourcerank/internal/core"
	"sourcerank/internal/crawler"
	"sourcerank/internal/experiments"
	"sourcerank/internal/gen"
	"sourcerank/internal/graph"
	"sourcerank/internal/linalg"
	"sourcerank/internal/rank"
	"sourcerank/internal/source"
	"sourcerank/internal/throttle"
	"sourcerank/internal/webgraph"
)

// benchConfig keeps the corpus-backed experiment benchmarks laptop-sized:
// ~1% of the paper's Table 1 scale.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.01, Seed: 1, Targets: 3}
}

func runExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Fprint(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tab.Rows)), "rows")
	}
}

// BenchmarkTable1SourceSummary regenerates Table 1 (source-graph summary
// across the three dataset presets).
func BenchmarkTable1SourceSummary(b *testing.B) {
	runExperiment(b, "table1", benchConfig())
}

// BenchmarkFig2ThrottleGain regenerates Figure 2 (closed-form one-time
// gain factor by κ).
func BenchmarkFig2ThrottleGain(b *testing.B) {
	runExperiment(b, "fig2", benchConfig())
}

// BenchmarkFig3CollusionCost regenerates Figure 3 (extra colluding
// sources needed under κ').
func BenchmarkFig3CollusionCost(b *testing.B) {
	runExperiment(b, "fig3", benchConfig())
}

// BenchmarkFig4Scenarios regenerates Figure 4(a–c) (PageRank vs SRSR gain
// factors under the three attack scenarios).
func BenchmarkFig4Scenarios(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, id := range []string{"fig4a", "fig4b", "fig4c"} {
			tab, err := experiments.Run(id, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := tab.Fprint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5SpamBuckets regenerates Figure 5 (20-bucket spam rank
// distribution, baseline vs throttled, on WB2001-sim).
func BenchmarkFig5SpamBuckets(b *testing.B) {
	runExperiment(b, "fig5", benchConfig())
}

// BenchmarkFig6IntraSource regenerates Figure 6 (intra-source
// manipulation cases A–D) on the UK2002-sim corpus.
func BenchmarkFig6IntraSource(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []gen.Preset{gen.UK2002}
	runExperiment(b, "fig6", cfg)
}

// BenchmarkFig7InterSource regenerates Figure 7 (inter-source
// manipulation cases A–D) on the UK2002-sim corpus.
func BenchmarkFig7InterSource(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []gen.Preset{gen.UK2002}
	runExperiment(b, "fig7", cfg)
}

// BenchmarkAblationConsensusVsUniform measures the §3.2 ablation:
// consensus vs uniform edge weighting under hijack pressure.
func BenchmarkAblationConsensusVsUniform(b *testing.B) {
	runExperiment(b, "ablation-consensus", benchConfig())
}

// BenchmarkAblationThrottle measures the κ-assignment-policy ablation
// (none vs binary top-k vs graded).
func BenchmarkAblationThrottle(b *testing.B) {
	runExperiment(b, "ablation-throttle", benchConfig())
}

// BenchmarkAblationSolver measures the power-vs-Jacobi solver ablation.
func BenchmarkAblationSolver(b *testing.B) {
	runExperiment(b, "ablation-solver", benchConfig())
}

// --- kernel microbenchmarks -------------------------------------------

// benchCorpus generates one UK2002-sim corpus for the kernel benches.
func benchCorpus(b *testing.B) *gen.Dataset {
	b.Helper()
	ds, err := gen.GeneratePreset(gen.UK2002, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkGenerateCorpus measures synthetic corpus generation.
func BenchmarkGenerateCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := gen.GeneratePreset(gen.UK2002, 0.01, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ds.Pages.NumLinks()), "links")
	}
}

// BenchmarkSourceGraphBuild measures consensus source-graph derivation.
func BenchmarkSourceGraphBuild(b *testing.B) {
	ds := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg, err := source.Build(ds.Pages, source.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sg.NumEdges), "source-edges")
	}
}

// BenchmarkPageRank measures the page-level PageRank solve at the paper's
// convergence threshold.
func BenchmarkPageRank(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rank.PageRank(g, rank.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Iterations), "iters")
	}
}

// BenchmarkSRSRPipeline measures the full Spam-Resilient SourceRank
// pipeline: proximity, throttle assignment, and the stationary solve.
func BenchmarkSRSRPipeline(b *testing.B) {
	ds := benchCorpus(b)
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.PipelineFromSourceGraph(sg, core.PipelineConfig{
			SpamSeeds: ds.SpamSources,
			TopK:      sg.NumSources() / 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Iterations), "iters")
	}
}

// BenchmarkThrottleApply measures the T″ transform alone.
func BenchmarkThrottleApply(b *testing.B) {
	ds := benchCorpus(b)
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		b.Fatal(err)
	}
	kappa := make([]float64, sg.NumSources())
	for i := range kappa {
		if i%7 == 0 {
			kappa[i] = 1
		} else if i%3 == 0 {
			kappa[i] = 0.5
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := throttle.Apply(sg.T, kappa); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpamProximity measures the inverse-PageRank proximity walk.
func BenchmarkSpamProximity(b *testing.B) {
	ds := benchCorpus(b)
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		b.Fatal(err)
	}
	st := sg.Structure()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := throttle.SpamProximity(st, ds.SpamSources, throttle.ProximityOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// spmvFixture builds a transition matrix for the SpMV benches.
func spmvFixture(b *testing.B) (*linalg.CSR, linalg.Vector, linalg.Vector) {
	b.Helper()
	ds := benchCorpus(b)
	m, err := ds.Pages.Transition()
	if err != nil {
		b.Fatal(err)
	}
	x := linalg.NewUniformVector(m.ColsN)
	dst := linalg.NewVector(m.Rows)
	return m, x, dst
}

// BenchmarkSpMVSerial measures the single-threaded gather kernel.
func BenchmarkSpMVSerial(b *testing.B) {
	m, x, dst := spmvFixture(b)
	b.SetBytes(int64(m.NNZ()) * 12) // 8B value + 4B column index per nonzero
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.MulVec(m, x, dst)
	}
}

// BenchmarkSpMVParallel measures the row-partitioned parallel kernel,
// the ablation counterpart of BenchmarkSpMVSerial.
func BenchmarkSpMVParallel(b *testing.B) {
	m, x, dst := spmvFixture(b)
	b.SetBytes(int64(m.NNZ()) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.MulVecParallel(m, x, dst, 0)
	}
}

// BenchmarkCompress measures WebGraph-style compression of the page
// graph; the reported metric is achieved bits per edge.
func BenchmarkCompress(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := webgraph.Compress(g)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.BitsPerEdge(), "bits/edge")
	}
}

// BenchmarkDecompress measures reconstruction of the CSR graph from the
// compressed form.
func BenchmarkDecompress(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	c, err := webgraph.Compress(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranspose measures graph transposition (used by the proximity
// walk and every solver).
func BenchmarkTranspose(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Transpose()
	}
}

// BenchmarkHITS measures the HITS baseline on the page graph.
func BenchmarkHITS(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rank.HITS(g, rank.Options{Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures CSR construction from an edge stream.
func BenchmarkGraphBuild(b *testing.B) {
	ds := benchCorpus(b)
	pg := ds.Pages
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := graph.NewBuilder(pg.NumPages())
		for u := 0; u < pg.NumPages(); u++ {
			for _, v := range pg.OutLinks(int32(u)) {
				gb.AddEdge(int32(u), v)
			}
		}
		_ = gb.Build()
	}
}

// BenchmarkCompressRef measures reference+interval compression.
func BenchmarkCompressRef(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := webgraph.CompressRef(g)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.BitsPerEdge(), "bits/edge")
	}
}

// BenchmarkSCC measures Tarjan SCC on the page graph.
func BenchmarkSCC(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := graph.SCC(g)
		b.ReportMetric(float64(r.NumComponents()), "components")
	}
}

// BenchmarkBowtie measures the bowtie decomposition.
func BenchmarkBowtie(b *testing.B) {
	ds := benchCorpus(b)
	g := ds.Pages.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graph.BowtieDecompose(g)
	}
}

// BenchmarkWarmStartRank measures incremental SRSR recomputation, the
// ablation counterpart of the cold solve inside BenchmarkSRSRPipeline.
func BenchmarkWarmStartRank(b *testing.B) {
	ds := benchCorpus(b)
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		b.Fatal(err)
	}
	kappa := make([]float64, sg.NumSources())
	cold, err := core.Rank(sg, kappa, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RankFrom(sg, kappa, cold.Scores, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Iterations), "iters")
	}
}

// BenchmarkGaussSeidel measures the Gauss–Seidel solve on the source
// transition system, the ablation counterpart of Jacobi/power.
func BenchmarkGaussSeidel(b *testing.B) {
	ds := benchCorpus(b)
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rhs := linalg.NewUniformVector(sg.NumSources())
	rhs.Scale(0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := linalg.GaussSeidelAffine(sg.T, 0.85, rhs, linalg.SolverOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Iterations), "iters")
	}
}

// BenchmarkCrawl measures the BFS crawl simulation over a hidden web.
func BenchmarkCrawl(b *testing.B) {
	ds := benchCorpus(b)
	// Seed from the homepages of the first 50 sources, as a crawler
	// bootstrap list would.
	var seeds []int32
	for s := 0; s < 50 && s < ds.Pages.NumSources(); s++ {
		if pages := ds.Pages.PagesOf(int32(s)); len(pages) > 0 {
			seeds = append(seeds, pages[0])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := crawler.Crawl(ds.Pages, crawler.Options{Seeds: seeds, MaxPages: 10000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Fetched), "fetched")
	}
}

// BenchmarkExperimentROI / Detection / Stability regenerate the extended
// experiments.
func BenchmarkExperimentROI(b *testing.B) {
	runExperiment(b, "roi", benchConfig())
}

func BenchmarkExperimentDetection(b *testing.B) {
	runExperiment(b, "detection", benchConfig())
}

func BenchmarkExperimentStability(b *testing.B) {
	runExperiment(b, "stability", benchConfig())
}

func BenchmarkExperimentWarmStart(b *testing.B) {
	runExperiment(b, "ablation-warmstart", benchConfig())
}

func BenchmarkExperimentGranularity(b *testing.B) {
	runExperiment(b, "ablation-granularity", benchConfig())
}
