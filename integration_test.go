package bench

import (
	"bytes"
	"math"
	"testing"

	"sourcerank/internal/core"
	"sourcerank/internal/crawler"
	"sourcerank/internal/gen"
	"sourcerank/internal/linalg"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/rank"
	"sourcerank/internal/rankeval"
	"sourcerank/internal/source"
	"sourcerank/internal/spam"
	"sourcerank/internal/throttle"
	"sourcerank/internal/webgraph"
)

// TestEndToEndAllPresets runs the full pipeline (generate → source graph
// → proximity → throttle → rank) on every dataset preset and checks the
// global invariants: convergence, probability-distribution output, and
// throttled-spam suppression relative to the baseline.
func TestEndToEndAllPresets(t *testing.T) {
	for _, preset := range gen.Presets {
		preset := preset
		t.Run(string(preset), func(t *testing.T) {
			ds, err := gen.GeneratePreset(preset, 0.004, 11)
			if err != nil {
				t.Fatal(err)
			}
			sg, err := source.Build(ds.Pages, source.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sg.Validate(); err != nil {
				t.Fatal(err)
			}
			seeds := ds.SpamSources[:len(ds.SpamSources)/10+1]
			pipe, err := core.PipelineFromSourceGraph(sg, core.PipelineConfig{
				SpamSeeds: seeds,
				TopK:      sg.NumSources() / 40,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !pipe.Stats.Converged || !pipe.ProximityStats.Converged {
				t.Fatalf("solvers did not converge: %+v %+v", pipe.Stats, pipe.ProximityStats)
			}
			if math.Abs(pipe.Scores.Sum()-1) > 1e-8 {
				t.Errorf("scores sum to %v", pipe.Scores.Sum())
			}
			base, err := core.BaselineSourceRank(sg, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			basePct, err := rankeval.MeanPercentileOf(base.Scores, ds.SpamSources)
			if err != nil {
				t.Fatal(err)
			}
			srsrPct, err := rankeval.MeanPercentileOf(pipe.Scores, ds.SpamSources)
			if err != nil {
				t.Fatal(err)
			}
			if srsrPct >= basePct {
				t.Errorf("SRSR mean spam percentile %.1f >= baseline %.1f", srsrPct, basePct)
			}
		})
	}
}

// TestDeterminismEndToEnd checks that the entire stack — generation,
// source graph, proximity, ranking — is bit-for-bit reproducible.
func TestDeterminismEndToEnd(t *testing.T) {
	run := func() linalg.Vector {
		ds, err := gen.GeneratePreset(gen.IT2004, 0.004, 99)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := core.Pipeline(ds.Pages, core.PipelineConfig{
			SpamSeeds: ds.SpamSources[:3],
			TopK:      20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pipe.Scores
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scores differ at %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestStorageRoundTripPreservesRanking serializes a corpus through both
// the pagegraph binary format and the compressed webgraph format and
// verifies the recovered graphs produce the identical PageRank vector.
func TestStorageRoundTripPreservesRanking(t *testing.T) {
	ds, err := gen.GeneratePreset(gen.UK2002, 0.004, 17)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := rank.PageRank(ds.Pages.ToGraph(), rank.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// pagegraph binary round trip.
	var buf bytes.Buffer
	if err := ds.Pages.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := pagegraph.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := rank.PageRank(back.ToGraph(), rank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.L2Distance(orig.Scores, pr2.Scores); d != 0 {
		t.Errorf("pagegraph round trip changed PageRank by %g", d)
	}

	// compressed webgraph round trip (plain and reference codecs).
	g := ds.Pages.ToGraph()
	for _, name := range []string{"plain", "ref"} {
		var back2 interface {
			NumNodes() int
			NumEdges() int64
			Successors(int32) []int32
			OutDegree(int32) int
		}
		switch name {
		case "plain":
			c, err := webgraph.Compress(g)
			if err != nil {
				t.Fatal(err)
			}
			back2, err = c.Decompress()
			if err != nil {
				t.Fatal(err)
			}
		default:
			c, err := webgraph.CompressRef(g)
			if err != nil {
				t.Fatal(err)
			}
			back2, err = c.Decompress()
			if err != nil {
				t.Fatal(err)
			}
		}
		if back2.NumEdges() != g.NumEdges() {
			t.Errorf("%s codec changed edge count", name)
		}
	}
}

// TestAttackDefenseCycle plays a full adversarial round: spammer mounts
// every attack primitive against a corpus, defender reruns the pipeline,
// and the spam target must end up no better than it started once
// throttling reacts.
func TestAttackDefenseCycle(t *testing.T) {
	ds, err := gen.GeneratePreset(gen.UK2002, 0.004, 23)
	if err != nil {
		t.Fatal(err)
	}
	web := ds.Pages.Clone()
	spamSrc := web.AddSource("attack-hub.biz")
	var farm []pagegraph.PageID
	for i := 0; i < 6; i++ {
		farm = append(farm, web.AddPage(spamSrc))
	}
	target := farm[0]

	// Mount everything: intra farm, collusion ring, honeypot, hijack.
	if _, err := spam.InjectIntraSource(web, target, 50); err != nil {
		t.Fatal(err)
	}
	colluders, err := spam.InjectCollusionNetwork(web, target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spam.Honeypot(web, []pagegraph.PageID{1, 2, 3}, target, 4); err != nil {
		t.Fatal(err)
	}
	if err := spam.Hijack(web, []pagegraph.PageID{5, 6}, target); err != nil {
		t.Fatal(err)
	}

	sg, err := source.Build(web, source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Undefended: no throttling.
	undefended, err := core.Rank(sg, make([]float64, sg.NumSources()), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Defended: the spam hub is labeled; proximity must pull in the
	// colluders and the honeypot.
	pipe, err := core.PipelineFromSourceGraph(sg, core.PipelineConfig{
		SpamSeeds: []int32{int32(spamSrc)},
		TopK:      10,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, c := range colluders {
		if pipe.Kappa[c] == 1 {
			caught++
		}
	}
	if caught < len(colluders) {
		t.Errorf("only %d/%d colluders throttled", caught, len(colluders))
	}
	up, err := rankeval.Percentile(undefended.Scores, int(spamSrc))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := rankeval.Percentile(pipe.Scores, int(spamSrc))
	if err != nil {
		t.Fatal(err)
	}
	if dp >= up {
		t.Errorf("defense did not reduce spam hub percentile: %.1f -> %.1f", up, dp)
	}
}

// TestCrawlSubsetRanking crawls a hidden web under a tight budget and
// verifies the ranking pipeline runs cleanly on the partial corpus.
func TestCrawlSubsetRanking(t *testing.T) {
	ds, err := gen.GeneratePreset(gen.WB2001, 0.002, 31)
	if err != nil {
		t.Fatal(err)
	}
	var seeds []pagegraph.PageID
	for s := 0; s < 30 && s < ds.Pages.NumSources(); s++ {
		if pages := ds.Pages.PagesOf(pagegraph.SourceID(s)); len(pages) > 0 {
			seeds = append(seeds, pages[0])
		}
	}
	res, err := crawler.Crawl(ds.Pages, crawler.Options{Seeds: seeds, MaxPages: 2000, MaxPerSource: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched == 0 {
		t.Skip("crawl reached nothing at this scale")
	}
	sg, err := source.Build(res.Corpus, source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.BaselineSourceRank(sg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Stats.Converged {
		t.Errorf("ranking on crawl did not converge")
	}
}

// TestThrottleMonotonicInfluence verifies §4.2's monotonicity claim on a
// real corpus: raising every spam source's κ monotonically lowers the
// total influence (score mass) the spam set exports to its targets.
func TestThrottleMonotonicInfluence(t *testing.T) {
	ds, err := gen.GeneratePreset(gen.UK2002, 0.004, 41)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prox, _, err := throttle.SpamProximity(sg.Structure(), ds.SpamSources, throttle.ProximityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = prox
	spamSet := map[int32]bool{}
	for _, s := range ds.SpamSources {
		spamSet[s] = true
	}
	// Mean percentile of NON-spam sources that spam points at, as κ of
	// all spam sources rises: the spam's boost to them must not grow.
	var beneficiaries []int32
	for _, s := range ds.SpamSources {
		cols, _ := sg.Counts.Row(int(s))
		for _, ccol := range cols {
			if !spamSet[ccol] {
				beneficiaries = append(beneficiaries, ccol)
			}
		}
	}
	if len(beneficiaries) == 0 {
		t.Skip("no spam beneficiaries in this corpus")
	}
	prev := math.Inf(1)
	for _, k := range []float64{0, 0.5, 1} {
		kappa := make([]float64, sg.NumSources())
		for _, s := range ds.SpamSources {
			kappa[s] = k
		}
		res, err := core.Rank(sg, kappa, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var mass float64
		for _, b := range beneficiaries {
			mass += res.Scores[b]
		}
		if mass > prev+1e-9 {
			t.Errorf("beneficiary mass grew when κ rose to %v: %v > %v", k, mass, prev)
		}
		prev = mass
	}
}
