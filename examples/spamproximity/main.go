// Spamproximity: visualize the paper's §5 mechanism — an inverse-PageRank
// walk propagates "spam proximity" from a small labeled seed set to every
// source, and the top-k proximity sources are throttled (κ = 1), even
// though most of them were never labeled.
//
//	go run ./examples/spamproximity
package main

import (
	"fmt"
	"log"
	"sort"

	"sourcerank/internal/gen"
	"sourcerank/internal/source"
	"sourcerank/internal/throttle"
)

func main() {
	// WB2001-shaped corpus at 0.5% scale: ~3,693 sources, ~52 planted
	// spam sources in collusion communities.
	ds, err := gen.GeneratePreset(gen.WB2001, 0.005, 13)
	if err != nil {
		log.Fatal(err)
	}
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Reveal fewer than 10% of the labeled spam sources, like the paper
	// (1,000 RANDOMLY selected seeds of 10,315 labeled).
	seedCount := len(ds.SpamSources) / 10
	if seedCount < 1 {
		seedCount = 1
	}
	rng := gen.NewRNG(99)
	perm := rng.Perm(len(ds.SpamSources))
	seeds := make([]int32, seedCount)
	for i := range seeds {
		seeds[i] = ds.SpamSources[perm[i]]
	}
	fmt.Printf("corpus: %d sources, %d ground-truth spam, %d revealed as seeds\n\n",
		sg.NumSources(), len(ds.SpamSources), len(seeds))

	prox, stats, err := throttle.SpamProximity(sg.Structure(), seeds, throttle.ProximityOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proximity walk converged in %d iterations (residual %.1e)\n\n",
		stats.Iterations, stats.Residual)

	// Throttle the top 2.7% of sources by proximity (the paper's 20,000
	// of 738,626 ratio).
	topK := int(0.027*float64(sg.NumSources()) + 0.5)
	kappa := throttle.TopK(prox, topK)

	// How many ground-truth spam sources did proximity catch without a
	// label?
	spamSet := map[int32]bool{}
	for _, s := range ds.SpamSources {
		spamSet[s] = true
	}
	seedSet := map[int32]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}
	var caughtUnlabeled, throttledTotal int
	for i, k := range kappa {
		if k != 1 {
			continue
		}
		throttledTotal++
		if spamSet[int32(i)] && !seedSet[int32(i)] {
			caughtUnlabeled++
		}
	}
	unlabeled := len(ds.SpamSources) - len(seeds)
	fmt.Printf("throttled %d sources; caught %d of %d UNLABELED spam sources (%.0f%%)\n\n",
		throttledTotal, caughtUnlabeled, unlabeled,
		100*float64(caughtUnlabeled)/float64(unlabeled))

	// Show the proximity leaderboard with ground truth annotated.
	type row struct {
		id int32
		p  float64
	}
	rows := make([]row, len(prox))
	for i, p := range prox {
		rows[i] = row{int32(i), p}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].p > rows[b].p })
	fmt.Println("top-15 by spam proximity:")
	for i := 0; i < 15 && i < len(rows); i++ {
		r := rows[i]
		tag := ""
		switch {
		case seedSet[r.id]:
			tag = "labeled seed"
		case spamSet[r.id]:
			tag = "spam, FOUND via proximity"
		default:
			tag = "legitimate (collateral)"
		}
		fmt.Printf("%2d. %-24s %.2e  %s\n", i+1, sg.Labels[r.id], r.p, tag)
	}
}
