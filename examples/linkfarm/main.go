// Linkfarm: reproduce the paper's core comparison on a synthetic corpus —
// a spammer grows a link farm pointed at a target page and we watch the
// target's PageRank percentile soar while its Spam-Resilient SourceRank
// percentile barely moves.
//
//	go run ./examples/linkfarm
package main

import (
	"fmt"
	"log"

	"sourcerank/internal/core"
	"sourcerank/internal/gen"
	"sourcerank/internal/rank"
	"sourcerank/internal/rankeval"
	"sourcerank/internal/source"
	"sourcerank/internal/spam"
)

func main() {
	// A UK2002-shaped corpus at 1% scale: ~982 sources.
	ds, err := gen.GeneratePreset(gen.UK2002, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	sg, err := source.Build(ds.Pages, source.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Base rankings: page-level PageRank, source-level SRSR (no
	// throttling info at all — the worst case for SRSR).
	basePR, err := rank.PageRank(ds.Pages.ToGraph(), rank.Options{})
	if err != nil {
		log.Fatal(err)
	}
	kappa := make([]float64, sg.NumSources())
	baseSR, err := core.Rank(sg, kappa, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Pick a genuinely obscure page: scan leaf pages of bottom-half
	// sources for the one with the lowest base PageRank percentile.
	bottom := rankeval.BottomHalf(baseSR.Scores)
	var target int32 = -1
	bestPct := 101.0
	for i, s := range bottom {
		if i >= 50 {
			break
		}
		pages := ds.Pages.PagesOf(s)
		if len(pages) < 2 {
			continue
		}
		p := pages[len(pages)-1]
		pct, err := rankeval.Percentile(basePR.Scores, int(p))
		if err != nil {
			log.Fatal(err)
		}
		if pct < bestPct {
			bestPct, target = pct, p
		}
	}
	if target < 0 {
		log.Fatal("no eligible target")
	}
	targetSrc := ds.Pages.SourceOf(target)

	basePagePct, _ := rankeval.Percentile(basePR.Scores, int(target))
	baseSrcPct, _ := rankeval.Percentile(baseSR.Scores, int(targetSrc))
	fmt.Printf("target: page %d in %s\n", target, ds.Pages.SourceLabel(targetSrc))
	fmt.Printf("before: PageRank pct %.1f | SRSR pct %.1f\n\n", basePagePct, baseSrcPct)

	fmt.Printf("%-10s %-22s %-22s\n", "farm size", "PageRank percentile", "SRSR percentile")
	for _, tau := range []int{1, 10, 100, 1000} {
		spammed := ds.Pages.Clone()
		if _, err := spam.InjectIntraSource(spammed, target, tau); err != nil {
			log.Fatal(err)
		}
		pr, err := rank.PageRank(spammed.ToGraph(), rank.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pagePct, _ := rankeval.Percentile(pr.Scores, int(target))

		sg2, err := source.Build(spammed, source.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sr, err := core.Rank(sg2, kappa, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		srcPct, _ := rankeval.Percentile(sr.Scores, int(targetSrc))

		fmt.Printf("%-10d %6.1f (%+.1f)%8s %6.1f (%+.1f)\n",
			tau, pagePct, pagePct-basePagePct, "", srcPct, srcPct-baseSrcPct)
	}
	fmt.Println("\nPageRank rewards every farmed page; the source view absorbs them")
	fmt.Println("into the self-edge, so the source's standing barely moves (§4.1).")
}
