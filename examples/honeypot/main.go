// Honeypot: reproduce the paper's §2 honeypot vulnerability and show how
// influence throttling blunts it. A spammer builds a genuinely useful
// site (the honeypot) that attracts organic links from legitimate pages,
// then funnels the accumulated authority to a spam site. Because the
// honeypot earns real links, trust-propagation defenses are fooled — but
// spam proximity flags it (it links straight to known spam) and
// throttling cuts the funnel.
//
//	go run ./examples/honeypot
package main

import (
	"fmt"
	"log"

	"sourcerank/internal/core"
	"sourcerank/internal/gen"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/rank"
	"sourcerank/internal/rankeval"
	"sourcerank/internal/source"
	"sourcerank/internal/spam"
)

func main() {
	ds, err := gen.GeneratePreset(gen.UK2002, 0.01, 3)
	if err != nil {
		log.Fatal(err)
	}
	web := ds.Pages.Clone()

	// The spammer's site: a fresh source with a small internal farm.
	spamSrc := web.AddSource("miracle-cures.biz")
	var spamPages []pagegraph.PageID
	for i := 0; i < 5; i++ {
		spamPages = append(spamPages, web.AddPage(spamSrc))
	}
	for i := range spamPages {
		web.AddLink(spamPages[i], spamPages[(i+1)%len(spamPages)])
	}
	target := spamPages[0]

	// Baseline rankings with the spam site present but unaided.
	prBefore, err := rank.PageRank(web.ToGraph(), rank.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sgBefore, err := source.Build(web, source.Options{})
	if err != nil {
		log.Fatal(err)
	}
	srBefore, err := core.BaselineSourceRank(sgBefore, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pb, _ := rankeval.Percentile(prBefore.Scores, int(target))
	sb, _ := rankeval.Percentile(srBefore.Scores, int(spamSrc))

	// Mount the honeypot: 10 quality pages attracting organic links from
	// 60 legitimate pages, every honeypot page funneling to the target.
	attacked := web.Clone()
	rng := gen.NewRNG(7)
	var admirers []pagegraph.PageID
	for len(admirers) < 60 {
		p := pagegraph.PageID(rng.Intn(ds.Pages.NumPages()))
		admirers = append(admirers, p)
	}
	hp, err := spam.Honeypot(attacked, admirers, target, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honeypot %q: 10 pages, %d organic in-links, funnel to %q\n\n",
		attacked.SourceLabel(hp), len(admirers), attacked.SourceLabel(spamSrc))

	prAfter, err := rank.PageRank(attacked.ToGraph(), rank.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pa, _ := rankeval.Percentile(prAfter.Scores, int(target))
	fmt.Printf("PageRank percentile of the spam page:      %5.1f -> %5.1f (%+.1f)\n", pb, pa, pa-pb)

	sgAfter, err := source.Build(attacked, source.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// SRSR without any throttling knowledge: the honeypot still helps.
	none, err := core.Rank(sgAfter, make([]float64, sgAfter.NumSources()), core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sa1, _ := rankeval.Percentile(none.Scores, int(spamSrc))
	fmt.Printf("SRSR percentile, no throttling:            %5.1f -> %5.1f (%+.1f)\n", sb, sa1, sa1-sb)

	// SRSR with the spam site labeled: proximity flags the honeypot (it
	// links directly to known spam) and throttling cuts the funnel.
	pipe, err := core.PipelineFromSourceGraph(sgAfter, core.PipelineConfig{
		SpamSeeds: []int32{int32(spamSrc)},
		TopK:      8,
	})
	if err != nil {
		log.Fatal(err)
	}
	sa2, _ := rankeval.Percentile(pipe.Scores, int(spamSrc))
	fmt.Printf("SRSR percentile, proximity throttling:     %5.1f -> %5.1f (%+.1f)\n", sb, sa2, sa2-sb)

	if pipe.Kappa[hp] == 1 {
		fmt.Println("\nthe honeypot was throttled (κ=1) purely by spam proximity: it links")
		fmt.Println("to the labeled spam site, so the inverse walk flags it — the organic")
		fmt.Println("authority it collected no longer reaches the spammer.")
	} else {
		fmt.Println("\nnote: the honeypot escaped the top-k throttle cut this run.")
	}
}
