// Urlcorpus: rank a corpus given as plain URLs and links, the way a real
// crawl would arrive. Pages are grouped into sources by host (the paper's
// §6.1 methodology) and ranked with PageRank, baseline SourceRank, and
// Spam-Resilient SourceRank side by side.
//
//	go run ./examples/urlcorpus
package main

import (
	"fmt"
	"log"

	"sourcerank/internal/core"
	"sourcerank/internal/pagegraph"
	"sourcerank/internal/rank"
	"sourcerank/internal/urlutil"
)

func main() {
	// A hand-written crawl snapshot. Indices into urls are the link
	// targets. discount-watches.biz hosts a farm that targets its own
	// landing page and exchanges links with luxury-replicas.biz.
	urls := []string{
		"http://www.gazette.com/frontpage",     // 0
		"http://www.gazette.com/politics",      // 1
		"http://encyclo.org/go",                // 2
		"http://encyclo.org/lang/go",           // 3
		"http://devblog.io/posts/1",            // 4
		"http://discount-watches.biz/",         // 5 spam landing page
		"http://discount-watches.biz/farm/a",   // 6
		"http://discount-watches.biz/farm/b",   // 7
		"http://discount-watches.biz/farm/c",   // 8
		"http://luxury-replicas.biz/",          // 9 colluding site
		"http://fan-blog.net/guestbook/hacked", // 10 hijacked page
		"http://luxury-replicas.biz/catalog",   // 11 colluder's second page
	}
	links := [][]int{
		{1, 2},  // frontpage -> politics, encyclo
		{0, 4},  // politics -> frontpage, devblog
		{3, 0},  // encyclo -> own article, gazette
		{2},     // article -> encyclo root
		{2, 3},  // devblog -> encyclo
		{9},     // spam landing -> colluder
		{5},     // farm pages all point at the landing page
		{5},     //
		{5},     //
		{5, 11}, // colluder -> spam landing + own catalog
		{5},     // hijacked guestbook page -> spam landing
		{5, 9},  // catalog -> spam landing + colluder home
	}

	pg, err := pagegraph.FromURLCorpus(urls, links, urlutil.ByHost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d pages over %d sources\n\n", pg.NumPages(), pg.NumSources())

	// Page-level PageRank.
	pr, err := rank.PageRank(pg.ToGraph(), rank.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PageRank (page level) — note the spam landing page's rank:")
	for i, u := range urls {
		fmt.Printf("  %.4f  %s\n", pr.Scores[i], u)
	}

	// Find the spam source ID for seeding.
	var spamSrc int32 = -1
	for s := 0; s < pg.NumSources(); s++ {
		if pg.SourceLabel(int32(s)) == "discount-watches.biz" {
			spamSrc = int32(s)
		}
	}
	if spamSrc < 0 {
		log.Fatal("spam source not found")
	}

	res, err := core.Pipeline(pg, core.PipelineConfig{
		SpamSeeds: []int32{spamSrc},
		TopK:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.BaselineSourceRank(res.SourceGraph, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSource level (baseline SourceRank vs Spam-Resilient SourceRank):")
	fmt.Printf("  %-24s %-10s %-10s %s\n", "source", "baseline", "SRSR", "κ")
	for s := 0; s < res.SourceGraph.NumSources(); s++ {
		fmt.Printf("  %-24s %-10.4f %-10.4f %.0f\n",
			res.SourceGraph.Labels[s], base.Scores[s], res.Scores[s], res.Kappa[s])
	}
	for s := 0; s < res.SourceGraph.NumSources(); s++ {
		if res.Kappa[s] != 1 || int32(s) == spamSrc {
			continue
		}
		switch res.SourceGraph.Labels[s] {
		case "luxury-replicas.biz":
			fmt.Println("\nluxury-replicas.biz was throttled purely by proximity (it trades")
			fmt.Println("links with the labeled spam site).")
		case "fan-blog.net":
			fmt.Println("\nfan-blog.net was throttled too: its hijacked guestbook links to")
			fmt.Println("known spam, and §5 deliberately throttles such feeder sources.")
		}
	}
}
