// Quickstart: build a tiny Web corpus by hand, run the full
// Spam-Resilient SourceRank pipeline, and print the source ranking.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"sourcerank/internal/core"
	"sourcerank/internal/pagegraph"
)

func main() {
	// A miniature Web: six legitimate sites in a citation ring and a
	// two-source spam operation.
	g := pagegraph.New()

	legitNames := []string{
		"news.example.org", "blog.example.net", "wiki.example.com",
		"shop.example.io", "docs.example.dev", "forum.example.co",
	}
	legit := make([]pagegraph.SourceID, len(legitNames))
	pages := map[pagegraph.SourceID][]pagegraph.PageID{}
	for i, name := range legitNames {
		legit[i] = g.AddSource(name)
		for p := 0; p < 4; p++ {
			pages[legit[i]] = append(pages[legit[i]], g.AddPage(legit[i]))
		}
	}
	spamA := g.AddSource("cheap-pills.biz")
	spamB := g.AddSource("casino-wins.biz")
	for _, s := range []pagegraph.SourceID{spamA, spamB} {
		for p := 0; p < 6; p++ {
			pages[s] = append(pages[s], g.AddPage(s))
		}
	}

	// Legitimate citations: each site links to the next two in the ring.
	n := len(legit)
	for i := range legit {
		g.AddLink(pages[legit[i]][0], pages[legit[(i+1)%n]][0])
		g.AddLink(pages[legit[i]][1], pages[legit[(i+2)%n]][0])
	}

	// The spam operation: intra-source link farms plus a link exchange
	// between the two spam sources, and one hijacked link planted on a
	// blog comment page.
	for i := 0; i < 6; i++ {
		g.AddLink(pages[spamA][i], pages[spamA][(i+1)%6]) // farm
		g.AddLink(pages[spamB][i], pages[spamB][(i+1)%6]) // farm
		g.AddLink(pages[spamA][i], pages[spamB][i])       // exchange
		g.AddLink(pages[spamB][i], pages[spamA][i])       // exchange
	}
	g.AddLink(pages[legit[1]][3], pages[spamA][0]) // hijacked comment link

	// Run the paper's pipeline: only cheap-pills.biz is labeled; the
	// proximity walk discovers casino-wins.biz through the exchange.
	res, err := core.Pipeline(g, core.PipelineConfig{
		Config:    core.Config{Alpha: 0.85},
		SpamSeeds: []int32{int32(spamA)},
		TopK:      2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Spam-Resilient SourceRank:")
	order := make([]int, len(res.Scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.Scores[order[a]] > res.Scores[order[b]] })
	for rank, s := range order {
		throttled := ""
		if res.Kappa[s] == 1 {
			throttled = "  [throttled]"
		}
		fmt.Printf("%d. %-22s score %.4f  κ=%.2f%s\n",
			rank+1, res.SourceGraph.Labels[s], res.Scores[s], res.Kappa[s], throttled)
	}
	fmt.Printf("\nsolver: %d iterations (residual %.1e)\n",
		res.Stats.Iterations, res.Stats.Residual)
	if res.Kappa[spamB] == 1 {
		fmt.Println("\ncasino-wins.biz was throttled without ever being labeled: spam")
		fmt.Println("proximity propagated from cheap-pills.biz through the link exchange.")
	}
}
