module sourcerank

go 1.22
